(* Syntax independence (the paper's Section 1.2).

   The same question — "customers who have ordered more than $X" — in
   the four formulations of Figure 1's lattice.  All normalize into the
   same plan space, return identical rows, and are optimized to plans
   of (near-)identical cost.

   Run with:  dune exec examples/syntax_independence.exe *)

let threshold = 500000

let formulations =
  [ ( "correlated subquery",
      Printf.sprintf
        "select c_custkey from customer where %d < \
         (select sum(o_totalprice) from orders where o_custkey = c_custkey)"
        threshold );
    ( "outerjoin + aggregate (Dayal)",
      Printf.sprintf
        "select c_custkey from customer left outer join orders on o_custkey = c_custkey \
         group by c_custkey having %d < sum(o_totalprice)"
        threshold );
    ( "join + aggregate",
      Printf.sprintf
        "select c_custkey from customer join orders on o_custkey = c_custkey \
         group by c_custkey having %d < sum(o_totalprice)"
        threshold );
    ( "derived table (Kim)",
      Printf.sprintf
        "select c_custkey from customer, (select o_custkey, sum(o_totalprice) as total \
         from orders group by o_custkey) a where o_custkey = c_custkey and %d < total"
        threshold )
  ]

let () =
  let db = Datagen.Tpch_gen.database ~sf:0.02 () in
  let eng = Engine.create db in
  let results =
    List.map
      (fun (name, sql) ->
        let p = Engine.prepare eng sql in
        let e = Engine.execute eng p in
        let rows =
          List.sort compare
            (List.map (fun r -> Relalg.Value.to_string r.(0)) e.result.rows)
        in
        (name, p, rows))
      formulations
  in
  print_endline "Four formulations of the same query (Figure 1's lattice):\n";
  List.iter
    (fun (name, p, rows) ->
      Printf.printf "%-32s cost %7.0f   %d rows\n" name p.Engine.plan_cost
        (List.length rows))
    results;
  let all_rows = List.map (fun (_, _, r) -> r) results in
  let same = List.for_all (fun r -> r = List.hd all_rows) all_rows in
  Printf.printf "\nidentical results across formulations: %b\n" same;
  let canons =
    List.map (fun (_, p, _) -> Optimizer.Search.canonical p.Engine.plan) results
  in
  Printf.printf "distinct plans chosen: %d\n"
    (List.length (List.sort_uniq compare canons));
  print_endline "\nChosen plan for the correlated-subquery formulation:";
  (match results with
  | (_, p, _) :: _ -> print_string (Relalg.Pp.to_string p.Engine.plan)
  | [] -> ())
