(* TPC-H Q17 and segmented execution (the paper's Section 3.4).

   Shows the flattened form of Q17, the SegmentApply alternative
   (Figure 6), the join pushed below the SegmentApply (Figure 7), and
   the measured effect.

   Run with:  dune exec examples/tpch_q17_segment.exe *)

let q17 =
  "select sum(l_extendedprice) / 7.0 as avg_yearly \
   from lineitem, part \
   where p_partkey = l_partkey and p_brand = 'Brand#23' and p_container = 'MED BOX' \
   and l_quantity < (select 0.2 * avg(l_quantity) from lineitem l2 \
                     where l2.l_partkey = part.p_partkey)"

let has_sa o =
  Relalg.Op.exists_op (function Relalg.Algebra.SegmentApply _ -> true | _ -> false) o

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let db = Datagen.Tpch_gen.database ~sf:0.05 () in
  let eng = Engine.create db in

  print_endline "TPC-H Query 17:";
  Printf.printf "  %s\n\n" q17;

  (* the flattened (normalized) form: the paper's derived-table SQL *)
  let p_flat = Engine.prepare ~config:Optimizer.Config.decorrelated_only eng q17 in
  print_endline "--- Normalized (flattened) form: two lineitem instances joined ---";
  print_string (Relalg.Pp.to_string p_flat.stages.normalized);

  (* force the segmented plan *)
  let sa_config =
    { Optimizer.Config.full with correlated_exec = false; local_agg = false }
  in
  let p_sa = Engine.prepare ~config:sa_config ~must:has_sa eng q17 in
  print_endline "\n--- Segmented execution (Figures 6/7) ---";
  print_endline "The two lineitem instances are recognized as the same expression;";
  print_endline "the join predicate's l_partkey equality becomes the segmenting";
  print_endline "column, and the part join is pushed below the SegmentApply:";
  print_string (Relalg.Pp.to_string p_sa.plan);

  (* measure the strategies *)
  print_endline "\n--- Measurements (SF 0.05) ---";
  let run name config must =
    let p = Engine.prepare ~config ?must eng q17 in
    let e, dt = time (fun () -> Engine.execute eng p) in
    Printf.printf "  %-28s %8.3f s   (%d rows)\n" name dt (List.length e.result.rows)
  in
  run "correlated" Optimizer.Config.correlated_only None;
  run "decorrelated (flattened)" Optimizer.Config.decorrelated_only None;
  run "segmented (forced)" sa_config (Some has_sa);
  run "full cost-based" Optimizer.Config.full None
