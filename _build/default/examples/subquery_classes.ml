(* The three subquery classes (the paper's Section 2.5).

   Class 1: flattened with no common subexpressions — the common case.
   Class 2: removal needs duplicated subexpressions (identities 5-7);
            kept correlated during normalization, unnestable on demand.
   Class 3: exception subqueries — Max1row runtime semantics, kept
            correlated.

   Run with:  dune exec examples/subquery_classes.exe *)

let () =
  let db = Datagen.Tpch_gen.database ~sf:0.005 () in
  let cat = db.Storage.Database.catalog in
  let env = Catalog.props_env cat in
  let classify ?(class2 = false) sql =
    let b = Sqlfront.Binder.bind_sql cat sql in
    let opts = { (Normalize.default_options env) with class2 } in
    Normalize.run opts b.op
  in
  let show title sql =
    let st = classify sql in
    Printf.printf "\n### %s\n  %s\n  -> %s\n" title sql
      (Normalize.Classify.to_string st.subquery_class);
    st
  in

  print_endline "== The paper's three subquery classes ==";

  (* Class 1: the paper's Q1 *)
  let st1 =
    show "Class 1: simple select/project/join/aggregate block"
      "select c_custkey from customer where 1000000 < \
       (select sum(o_totalprice) from orders where o_custkey = c_custkey)"
  in
  print_string (Relalg.Pp.to_string st1.normalized);

  (* Class 2: the paper's UNION ALL example, transposed *)
  let class2_sql =
    "select ps_partkey from partsupp where 100 > \
     (select sum(s_acctbal) from (select s_acctbal from supplier where s_suppkey = ps_suppkey \
      union all select p_retailprice from part where p_partkey = ps_partkey) u)"
  in
  let st2 = show "Class 2: subquery over UNION ALL of correlated branches" class2_sql in
  print_string (Relalg.Pp.to_string st2.normalized);
  print_endline "\nWith identities (5)-(7) enabled (duplicating the outer), the same";
  print_endline "query flattens:";
  let st2b = classify ~class2:true class2_sql in
  Printf.printf "  -> %s\n" (Normalize.Classify.to_string st2b.subquery_class);
  print_string (Relalg.Pp.to_string st2b.normalized);

  (* Class 3: the paper's Q2 (Section 2.4) *)
  let st3 =
    show "Class 3: scalar subquery that may return several rows (Max1row)"
      "select c_name, (select o_orderkey from orders where o_custkey = c_custkey) \
       from customer"
  in
  print_string (Relalg.Pp.to_string st3.normalized);
  print_endline "\n...but with the roles reversed the key makes Max1row unnecessary";
  print_endline "(the paper's reversed example):";
  let st3b =
    show "Max1row elided via key derivation"
      "select o_orderkey, (select c_name from customer where c_custkey = o_custkey) \
       from orders"
  in
  ignore st3b;

  (* run the class-3 query and show the runtime error *)
  print_endline "\nExecuting the Class 3 query (a customer with two orders trips Max1row):";
  let eng = Engine.create db in
  (try
     ignore
       (Engine.query eng
          "select c_name, (select o_orderkey from orders where o_custkey = c_custkey) from customer")
   with Exec.Executor.Runtime_error msg -> Printf.printf "  runtime error: %s\n" msg)
