(* The paper's Figures 2, 3 and 5, live.

   Shows every stage of normalizing the motivating query Q1 ("customers
   who have ordered more than $1,000,000"), from the binder's
   mutually-recursive tree to the flattened join, and verifies that all
   stages compute identical results.

   Run with:  dune exec examples/decorrelation_walkthrough.exe *)

let q1 =
  "select c_custkey from customer \
   where 1000000 < (select sum(o_totalprice) from orders where o_custkey = c_custkey)"

let () =
  Relalg.Col.reset_counter ();
  let db = Datagen.Tpch_gen.database ~sf:0.01 () in
  let cat = db.Storage.Database.catalog in
  let env = Catalog.props_env cat in
  let b = Sqlfront.Binder.bind_sql cat q1 in
  let st = Normalize.run (Normalize.default_options env) b.op in

  print_endline "Query (the paper's Q1, Section 1.1):";
  Printf.printf "  %s\n" q1;

  print_endline "\n--- Stage 1: binder output (Figure 3) ---";
  print_endline "Scalar and relational operators are mutually recursive: the";
  print_endline "comparison's right operand is a relational subquery.";
  print_string (Relalg.Pp.to_string st.bound);

  print_endline "\n--- Stage 2: Apply introduced (Figure 2) ---";
  print_endline "The subquery is evaluated explicitly by Apply; the scalar side";
  print_endline "now only references a column.  Still a nested-loops execution,";
  print_endline "but no recursion between scalar and relational evaluation.";
  print_string (Relalg.Pp.to_string st.applied);

  print_endline "\n--- Stage 3: Apply removed (Figure 5, identity (9) then (2)) ---";
  print_endline "The scalar aggregate becomes a vector GroupBy over a left";
  print_endline "outerjoin: exactly Dayal's outerjoin-then-aggregate strategy.";
  print_string (Relalg.Pp.to_string st.decorrelated);

  print_endline "\n--- Stage 4: outerjoin simplified ---";
  print_endline "1000000 < X rejects NULL; the rejection derives through the";
  print_endline "GroupBy to o_totalprice, so the outerjoin becomes a join.";
  print_string (Relalg.Pp.to_string st.oj_simplified);

  print_endline "\n--- Stage 5: cleanup and column pruning ---";
  print_string (Relalg.Pp.to_string st.normalized);
  Printf.printf "\nsubquery classification: %s\n"
    (Normalize.Classify.to_string st.subquery_class);

  (* verify all stages agree *)
  let run op =
    let ctx = Exec.Executor.make_ctx db in
    Exec.Executor.run ctx Exec.Executor.empty_lookup op
    |> List.map (fun r -> Array.map Relalg.Value.to_string r)
    |> List.sort compare
  in
  let r_bound = run st.bound in
  let r_norm = run st.normalized in
  Printf.printf "\nAll stages equivalent: %b (%d qualifying customers)\n"
    (r_bound = r_norm) (List.length r_norm);

  (* and what cost-based optimization picks in the end *)
  let eng = Engine.create db in
  let p = Engine.prepare eng q1 in
  Printf.printf "\n--- Cost-based choice (%d alternatives explored) ---\n" p.explored;
  print_string (Relalg.Pp.to_string p.plan);
  print_endline "\nWith few outer rows and an index on o_custkey, the optimizer may";
  print_endline "re-introduce correlated execution as an index-lookup Apply — the";
  print_endline "paper's point that correlated execution \"can actually be the best";
  print_endline "strategy\" when the outer table is small and indices exist."
