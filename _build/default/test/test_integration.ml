(* SQL conformance battery: each query runs under all three optimizer
   technology levels and must produce the expected rows (hand-computed
   against the toy database) under every one.

   Toy data:
     emp:  (1,ann,1,100) (2,bob,1,200) (3,cid,2,300) (4,dan,99,400)
     dept: (1,eng) (2,ops) (3,hr)
     bag:  (1,10) (1,10) (2,20) *)

let db = lazy (Support.toy_db ())

let all_configs =
  [ ("correlated", Optimizer.Config.correlated_only);
    ("decorrelated", Optimizer.Config.decorrelated_only);
    ("full", Optimizer.Config.full)
  ]

let check (sql, expected) =
  List.iter
    (fun (cname, config) ->
      let got = Support.bag (Support.run_sql ~config (Lazy.force db) sql) in
      Alcotest.(check (list string)) (cname ^ ": " ^ sql) (List.sort compare expected) got)
    all_configs

let battery name cases = Alcotest.test_case name `Quick (fun () -> List.iter check cases)

let projections =
  [ ("select eid from emp", [ "1"; "2"; "3"; "4" ]);
    ("select eid + 1, salary * 2 from emp where eid = 1", [ "2|200.0" ]);
    ("select name from emp where eid % 2 = 0", [ "bob"; "dan" ]);
    ("select eid from emp where -eid = -3", [ "3" ]);
    ("select 1 + 2 * 3 from emp where eid = 1", [ "7" ]);
    ("select eid from emp where salary / 2 = 100", [ "2" ])
  ]

let filters =
  [ ("select eid from emp where salary between 150 and 350", [ "2"; "3" ]);
    ("select eid from emp where salary not between 150 and 350", [ "1"; "4" ]);
    ("select eid from emp where name in ('ann', 'dan')", [ "1"; "4" ]);
    ("select eid from emp where name not in ('ann', 'dan')", [ "2"; "3" ]);
    ("select eid from emp where not (salary > 250)", [ "1"; "2" ]);
    ("select eid from emp where dept = 1 or dept = 2", [ "1"; "2"; "3" ]);
    ("select eid from emp where true", [ "1"; "2"; "3"; "4" ]);
    ("select eid from emp where false", []);
    ("select eid from emp where name like '%n%'", [ "1"; "4" ])
  ]

let joins =
  [ ( "select name, dname from emp, dept where dept = did and salary > 150",
      [ "bob|eng"; "cid|ops" ] );
    ( "select name, dname from emp left join dept on dept = did and dname = 'eng'",
      [ "ann|eng"; "bob|eng"; "cid|NULL"; "dan|NULL" ] );
    ( "select e1.name, e2.name from emp e1, emp e2 where e1.dept = e2.dept and e1.eid < e2.eid",
      [ "ann|bob" ] );
    ( "select name from emp, dept where dept = did and dname like 'e%'",
      [ "ann"; "bob" ] );
    ("select count(*) from emp, dept", [ "12" ]);
    ( "select dname, x from dept, bag where did = x",
      [ "eng|1"; "eng|1"; "ops|2" ] )
  ]

let aggregates =
  [ ("select sum(salary) from emp where dept = 1", [ "300.0" ]);
    ("select count(*), count(dname) from emp left join dept on dept = did", [ "4|3" ]);
    ("select min(name), max(name) from emp", [ "ann|dan" ]);
    ("select avg(salary) from emp where dept = 1", [ "150.0" ]);
    ("select dept, count(*) from emp group by dept having sum(salary) >= 300", [ "1|2"; "2|1"; "99|1" ]);
    ("select x, sum(y), count(*) from bag group by x", [ "1|20|2"; "2|20|1" ]);
    ("select dept from emp group by dept having min(salary) > 150", [ "2"; "99" ]);
    ("select count(*) from emp where salary > 1000", [ "0" ]);
    ("select sum(salary + 1) from emp where dept = 1", [ "302.0" ]);
    ("select distinct dept from emp where salary <= 300", [ "1"; "2" ])
  ]

let subqueries =
  [ ( "select did from dept where 150 < (select sum(salary) from emp where dept = did)",
      [ "1"; "2" ] );
    ( "select did from dept where (select count(*) from emp where dept = did) = 0",
      [ "3" ] );
    ( "select name from emp where salary = (select max(salary) from emp)",
      [ "dan" ] );
    ( "select name from emp where salary > (select avg(e2.salary) from emp e2 where e2.dept = emp.dept)",
      [ "bob" ] );
    ( "select eid from emp where exists (select 1 from dept where did = dept and dname = 'eng')",
      [ "1"; "2" ] );
    ( "select eid from emp where dept in (select did from dept where dname <> 'hr')",
      [ "1"; "2"; "3" ] );
    ( "select eid from emp where salary >= all (select salary from emp e2)",
      [ "4" ] );
    ( "select eid from emp where salary <= any (select salary from emp e2 where e2.eid <> emp.eid)",
      [ "1"; "2"; "3" ] );
    (* uncorrelated subqueries *)
    ( "select eid from emp where dept = (select min(did) from dept)",
      [ "1"; "2" ] );
    (* nested two levels *)
    ( "select name from emp where dept in (select did from dept where did < (select max(did) from dept))",
      [ "ann"; "bob"; "cid" ] );
    (* subquery in the select list *)
    ( "select dname, (select count(*) from emp where dept = did) from dept",
      [ "eng|2"; "hr|0"; "ops|1" ] );
    (* union all inside a derived table *)
    ( "select v from (select eid as v from emp where dept = 1 union all select did from dept) u",
      [ "1"; "1"; "2"; "2"; "3" ] )
  ]

let nulls =
  [ (* padded columns compare as NULL *)
    ( "select name from emp left join dept on dept = did where dname is null",
      [ "dan" ] );
    ( "select name from emp left join dept on dept = did where dname is not null",
      [ "ann"; "bob"; "cid" ] );
    (* aggregates over padded groups *)
    ( "select name, (select sum(did) from dept where did = dept) from emp",
      [ "ann|1"; "bob|1"; "cid|2"; "dan|NULL" ] );
    (* scalar subquery with empty result in arithmetic *)
    ( "select eid from emp where salary + (select did from dept where did = 50) > 0",
      [] );
    (* count of empty is zero, sum of empty is null *)
    ( "select (select count(*) from emp where dept = 42), (select sum(salary) from emp where dept = 42) from dept where did = 1",
      [ "0|NULL" ] )
  ]

let ordering =
  [ ("select name from emp order by salary desc limit 1", [ "dan" ]);
    ("select name from emp order by name limit 2", [ "ann"; "bob" ]);
    ("select eid from emp order by dept desc, salary asc limit 2", [ "4"; "3" ]);
    ("select dept, sum(salary) as s from emp group by dept order by s desc limit 1", [ "99|400.0" ])
  ]

let derived_tables =
  [ ( "select t.n from (select name as n, salary as s from emp) t where t.s > 250",
      [ "cid"; "dan" ] );
    ( "select d.dname, t.total from dept d, (select dept, sum(salary) as total from emp group by dept) t \
       where t.dept = d.did",
      [ "eng|300.0"; "ops|300.0" ] );
    ( "select a.v + b.v from (select max(salary) as v from emp) a, (select min(salary) as v from emp) b",
      [ "500.0" ] )
  ]

let case_expressions =
  [ ( "select name, case when salary < 150 then 'low' when salary < 350 then 'mid' else 'high' end from emp",
      [ "ann|low"; "bob|mid"; "cid|mid"; "dan|high" ] );
    ( "select sum(case when dept = 1 then salary else 0 end) from emp",
      [ "300.0" ] );
    ("select case when 1 = 2 then 'x' end from emp where eid = 1", [ "NULL" ])
  ]

let suite =
  [ battery "projections and arithmetic" projections;
    battery "filters" filters;
    battery "joins" joins;
    battery "aggregates" aggregates;
    battery "subqueries" subqueries;
    battery "null semantics" nulls;
    battery "ordering and limits" ordering;
    battery "derived tables" derived_tables;
    battery "case expressions" case_expressions
  ]
