(* Tests for the Section 3 transformation rules: each rule must fire
   exactly under its conditions and preserve semantics on the toy
   database. *)

open Relalg
open Relalg.Algebra

let db = lazy (Support.toy_db ())

let cat () = (Lazy.force db).Storage.Database.catalog
let env () = Catalog.props_env (cat ())

(* build: dept ⋈ (G_{dept}[sum salary] emp) on dept-col = did *)
let join_over_groupby () =
  let dcols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
      (Option.get (Catalog.find_table (cat ()) "dept")).columns in
  let ecols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
      (Option.get (Catalog.find_table (cat ()) "emp")).columns in
  let dept_scan = TableScan { table = "dept"; cols = dcols } in
  let emp_scan = TableScan { table = "emp"; cols = ecols } in
  let did = List.nth dcols 0 in
  let edept = List.nth ecols 2 and esal = List.nth ecols 3 in
  let s = { fn = Sum (ColRef esal); out = Col.fresh "s" Value.TFloat } in
  let g = GroupBy { keys = [ edept ]; aggs = [ s ]; input = emp_scan } in
  let j =
    Join { kind = Inner; pred = Cmp (Eq, ColRef did, ColRef edept); left = dept_scan; right = g }
  in
  (j, did, edept, s)

let check_equiv msg a b =
  Support.check_same_bag msg (Support.run_op (Lazy.force db) a) (Support.run_op (Lazy.force db) b)

let test_pull_groupby_above_join () =
  let j, _, _, _ = join_over_groupby () in
  match Rules.Groupby_reorder.pull_above_join ~env:(env ()) j with
  | None -> Alcotest.fail "pull should fire (dept has a key)"
  | Some pulled ->
      check_equiv "pull preserves semantics" j pulled;
      (* the pulled tree has GroupBy above the join *)
      (match pulled with
      | Project (_, GroupBy { input = Join _; _ }) -> ()
      | _ -> Alcotest.failf "unexpected shape:\n%s" (Pp.to_string pulled))

let test_pull_blocked_without_key () =
  (* joining with the keyless bag table blocks the pull *)
  let bcols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
      (Option.get (Catalog.find_table (cat ()) "bag")).columns in
  let ecols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
      (Option.get (Catalog.find_table (cat ()) "emp")).columns in
  let bag_scan = TableScan { table = "bag"; cols = bcols } in
  let emp_scan = TableScan { table = "emp"; cols = ecols } in
  let bx = List.nth bcols 0 and edept = List.nth ecols 2 in
  let s = { fn = Sum (ColRef (List.nth ecols 3)); out = Col.fresh "s" Value.TFloat } in
  let g = GroupBy { keys = [ edept ]; aggs = [ s ]; input = emp_scan } in
  let j = Join { kind = Inner; pred = Cmp (Eq, ColRef bx, ColRef edept); left = bag_scan; right = g } in
  Alcotest.(check bool) "no key, no pull" true
    (Rules.Groupby_reorder.pull_above_join ~env:(env ()) j = None)

let test_pull_blocked_on_agg_pred () =
  let j, did, edept, s = join_over_groupby () in
  ignore (did, edept);
  (* a predicate using the aggregate output blocks pulling *)
  let j' =
    match j with
    | Join jj -> Join { jj with pred = And (jj.pred, Cmp (Gt, ColRef s.out, Const (Value.Float 0.))) }
    | _ -> assert false
  in
  Alcotest.(check bool) "agg pred blocks" true
    (Rules.Groupby_reorder.pull_above_join ~env:(env ()) j' = None)

(* the push direction: GroupBy over a join *)
let groupby_over_join ?(agg_on_emp = true) () =
  let dcols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
      (Option.get (Catalog.find_table (cat ()) "dept")).columns in
  let ecols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
      (Option.get (Catalog.find_table (cat ()) "emp")).columns in
  let dept_scan = TableScan { table = "dept"; cols = dcols } in
  let emp_scan = TableScan { table = "emp"; cols = ecols } in
  let did = List.nth dcols 0 and dname = List.nth dcols 1 in
  let edept = List.nth ecols 2 and esal = List.nth ecols 3 in
  let agg_src = if agg_on_emp then esal else did in
  let s = { fn = Sum (ColRef agg_src); out = Col.fresh "s" Value.TFloat } in
  let j =
    Join { kind = Inner; pred = Cmp (Eq, ColRef did, ColRef edept); left = dept_scan; right = emp_scan }
  in
  (GroupBy { keys = [ did; dname ]; aggs = [ s ]; input = j }, did)

let test_push_groupby_below_join () =
  let g, _ = groupby_over_join () in
  match Rules.Groupby_reorder.push_below_join ~env:(env ()) g with
  | None -> Alcotest.fail "push should fire"
  | Some pushed ->
      check_equiv "push preserves semantics" g pushed;
      (match pushed with
      | Project (_, Join { right = GroupBy _; _ }) | Project (_, Join { left = GroupBy _; _ }) -> ()
      | _ -> Alcotest.failf "unexpected shape:\n%s" (Pp.to_string pushed))

let test_push_blocked_mixed_aggs () =
  (* aggregate over the wrong side blocks the push onto emp *)
  let g, _ = groupby_over_join ~agg_on_emp:false () in
  match Rules.Groupby_reorder.push_below_join ~env:(env ()) g with
  | None -> ()
  | Some pushed ->
      (* if it fired it must have pushed to the dept side; either way
         semantics must hold *)
      check_equiv "still equivalent" g pushed

let test_push_below_outerjoin_with_compensation () =
  (* count-star per department over a LEFT OUTER JOIN: pushing below must
     compensate the padded groups with constant 1 *)
  let dcols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
      (Option.get (Catalog.find_table (cat ()) "dept")).columns in
  let ecols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
      (Option.get (Catalog.find_table (cat ()) "emp")).columns in
  let dept_scan = TableScan { table = "dept"; cols = dcols } in
  let emp_scan = TableScan { table = "emp"; cols = ecols } in
  let did = List.nth dcols 0 in
  let edept = List.nth ecols 2 and esal = List.nth ecols 3 in
  let cnt = { fn = CountStar; out = Col.fresh "c" Value.TInt } in
  let s = { fn = Sum (ColRef esal); out = Col.fresh "s" Value.TFloat } in
  let j =
    Join { kind = LeftOuter; pred = Cmp (Eq, ColRef did, ColRef edept); left = dept_scan; right = emp_scan }
  in
  let g = GroupBy { keys = [ did ]; aggs = [ cnt; s ]; input = j } in
  match Rules.Groupby_reorder.push_below_outerjoin ~env:(env ()) g with
  | None -> Alcotest.fail "outerjoin push should fire"
  | Some pushed ->
      check_equiv "outerjoin push preserves semantics" g pushed;
      (* check the padded department (hr) yields count 1, sum NULL *)
      let rows = Support.bag (Support.run_op (Lazy.force db) pushed) in
      Alcotest.(check bool) "hr group count 1 sum null" true
        (List.exists (fun r -> r = "3|1|NULL") rows)

let test_filter_groupby_commute () =
  let g, did = groupby_over_join () in
  let f = Select (Cmp (Eq, ColRef did, Const (Value.Int 1)), g) in
  (match Rules.Groupby_reorder.push_filter_below_groupby f with
  | None -> Alcotest.fail "filter push should fire (grouping col)"
  | Some pushed -> check_equiv "filter push ok" f pushed);
  (* filter on the aggregate cannot go below *)
  let s_out = match g with GroupBy { aggs = [ a ]; _ } -> a.out | _ -> assert false in
  let f2 = Select (Cmp (Gt, ColRef s_out, Const (Value.Float 0.)), g) in
  Alcotest.(check bool) "agg filter blocked" true
    (Rules.Groupby_reorder.push_filter_below_groupby f2 = None)

let test_semijoin_groupby_reorder () =
  let g, did = groupby_over_join () in
  let ucols = [ Col.fresh "x" Value.TInt ] in
  let u = ConstTable { cols = ucols; rows = [ [| Value.Int 1 |]; [| Value.Int 3 |] ] } in
  let semi =
    Join { kind = Semi; pred = Cmp (Eq, ColRef did, ColRef (List.hd ucols)); left = g; right = u }
  in
  (match Rules.Groupby_reorder.push_semijoin_below_groupby semi with
  | None -> Alcotest.fail "semijoin push should fire"
  | Some pushed ->
      check_equiv "semijoin push ok" semi pushed;
      (match pushed with
      | GroupBy { input = Join { kind = Semi; _ }; _ } -> ()
      | _ -> Alcotest.fail "unexpected shape"));
  (* and the reverse direction *)
  match Rules.Groupby_reorder.push_semijoin_below_groupby semi with
  | Some pushed -> (
      match Rules.Groupby_reorder.pull_semijoin_above_groupby pushed with
      | Some pulled -> check_equiv "roundtrip" semi pulled
      | None -> Alcotest.fail "pull back should fire")
  | None -> ()

(* ---- local aggregates ---- *)

let test_local_agg_split () =
  let g, _ = groupby_over_join () in
  match Rules.Local_agg.split g with
  | None -> Alcotest.fail "split should fire"
  | Some split ->
      check_equiv "split preserves semantics" g split;
      (match split with
      | Project (_, GroupBy { input = LocalGroupBy _; _ }) -> ()
      | _ -> Alcotest.failf "unexpected shape:\n%s" (Pp.to_string split))

let test_local_agg_split_all_functions () =
  (* sum/count/min/max/avg and count-star all split correctly *)
  let ecols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
      (Option.get (Catalog.find_table (cat ()) "emp")).columns in
  let emp_scan = TableScan { table = "emp"; cols = ecols } in
  let edept = List.nth ecols 2 and esal = List.nth ecols 3 in
  let mk fn name = { fn; out = Col.fresh name Value.TFloat } in
  let aggs =
    [ mk (Sum (ColRef esal)) "s"; mk CountStar "c"; mk (Count (ColRef esal)) "ce";
      mk (Min (ColRef esal)) "mn"; mk (Max (ColRef esal)) "mx"; mk (Avg (ColRef esal)) "av"
    ]
  in
  let g = GroupBy { keys = [ edept ]; aggs; input = emp_scan } in
  match Rules.Local_agg.split g with
  | None -> Alcotest.fail "split should fire"
  | Some split -> check_equiv "all aggregates split" g split

let test_eager_aggregation () =
  let g, _ = groupby_over_join () in
  match Rules.Local_agg.eager_aggregate g with
  | None -> Alcotest.fail "eager aggregation should fire"
  | Some eager ->
      check_equiv "eager preserves semantics" g eager;
      (* a LocalGroupBy must now sit below the join *)
      let rec has_local_below_join (o : op) =
        match o with
        | Join { left = LocalGroupBy _; _ } | Join { right = LocalGroupBy _; _ } -> true
        | _ -> List.exists has_local_below_join (Op.children o)
      in
      Alcotest.(check bool) "local below join" true (has_local_below_join eager)

let test_eager_aggregation_no_key_needed () =
  (* unlike the full pushdown, eager aggregation works when the
     preserved side has no key: group by bag.x after joining bag with
     emp *)
  let bcols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
      (Option.get (Catalog.find_table (cat ()) "bag")).columns in
  let ecols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
      (Option.get (Catalog.find_table (cat ()) "emp")).columns in
  let bag_scan = TableScan { table = "bag"; cols = bcols } in
  let emp_scan = TableScan { table = "emp"; cols = ecols } in
  let bx = List.nth bcols 0 in
  let eid = List.nth ecols 0 and esal = List.nth ecols 3 in
  let s = { fn = Sum (ColRef esal); out = Col.fresh "s" Value.TFloat } in
  let j = Join { kind = Inner; pred = Cmp (Eq, ColRef bx, ColRef eid); left = bag_scan; right = emp_scan } in
  let g = GroupBy { keys = [ bx ]; aggs = [ s ]; input = j } in
  (* duplicates in bag must be preserved by the global recombination *)
  match Rules.Local_agg.eager_aggregate g with
  | None -> Alcotest.fail "eager should fire without key"
  | Some eager -> check_equiv "bag duplicates preserved" g eager

(* ---- segment apply ---- *)

let self_join_with_agg () =
  (* emp ⋈ (select dept, avg(salary) from emp group by dept) on same dept *)
  let mk () = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
      (Option.get (Catalog.find_table (cat ()) "emp")).columns in
  let c1 = mk () and c2 = mk () in
  let e1 = TableScan { table = "emp"; cols = c1 } in
  let e2 = TableScan { table = "emp"; cols = c2 } in
  let d1 = List.nth c1 2 and d2 = List.nth c2 2 and s2 = List.nth c2 3 in
  let av = { fn = Avg (ColRef s2); out = Col.fresh "av" Value.TFloat } in
  let g = GroupBy { keys = [ d2 ]; aggs = [ av ]; input = e2 } in
  let sal1 = List.nth c1 3 in
  let j =
    Join
      { kind = Inner;
        pred = And (Cmp (Eq, ColRef d1, ColRef d2), Cmp (Lt, ColRef sal1, ColRef av.out));
        left = e1;
        right = g
      }
  in
  (j, d1)

let test_segment_apply_intro () =
  let j, d1 = self_join_with_agg () in
  match Rules.Segment_apply.introduce j with
  | None -> Alcotest.fail "SegmentApply intro should fire"
  | Some sa ->
      check_equiv "segment apply preserves semantics" j sa;
      let rec find_sa (o : op) =
        match o with
        | SegmentApply { seg_cols; _ } -> Some seg_cols
        | _ -> List.find_map find_sa (Op.children o)
      in
      (match find_sa sa with
      | Some [ c ] -> Alcotest.(check bool) "segments on dept" true (Col.equal c d1)
      | _ -> Alcotest.fail "expected one segmenting column")

let test_segment_apply_no_fire_on_different_tables () =
  (* dept ⋈ agg(emp): not two instances of the same expression *)
  let g, _ = groupby_over_join () in
  match g with
  | GroupBy { input = j; _ } ->
      Alcotest.(check bool) "no iso, no segment" true (Rules.Segment_apply.introduce j = None)
  | _ -> assert false

let test_segment_apply_join_pushdown () =
  let j, _ = self_join_with_agg () in
  match Rules.Segment_apply.introduce j with
  | None -> Alcotest.fail "intro should fire"
  | Some sa ->
      (* join the SegmentApply with dept on the segmenting column *)
      let dcols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
          (Option.get (Catalog.find_table (cat ()) "dept")).columns in
      let dept_scan = TableScan { table = "dept"; cols = dcols } in
      let did = List.nth dcols 0 in
      let seg_col =
        let rec find (o : op) =
          match o with
          | SegmentApply { seg_cols = [ c ]; _ } -> Some c
          | _ -> List.find_map find (Op.children o)
        in
        Option.get (find sa)
      in
      let outer_join =
        Join { kind = Inner; pred = Cmp (Eq, ColRef seg_col, ColRef did); left = sa; right = dept_scan }
      in
      (match Rules.Segment_apply.push_join_below outer_join with
      | None -> Alcotest.fail "join pushdown should fire"
      | Some pushed ->
          check_equiv "pushdown preserves semantics" outer_join pushed;
          (* the join must now be inside the SegmentApply's outer *)
          let rec sa_outer_has_join (o : op) =
            match o with
            | SegmentApply { outer = Join _; _ } -> true
            | _ -> List.exists sa_outer_has_join (Op.children o)
          in
          Alcotest.(check bool) "join below segment apply" true (sa_outer_has_join pushed))

let test_join_to_indexed_apply () =
  (* emp has an index on dept: the join can execute as index-lookup
     apply *)
  let dcols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
      (Option.get (Catalog.find_table (cat ()) "dept")).columns in
  let ecols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty)
      (Option.get (Catalog.find_table (cat ()) "emp")).columns in
  let dept_scan = TableScan { table = "dept"; cols = dcols } in
  let emp_scan = TableScan { table = "emp"; cols = ecols } in
  let did = List.nth dcols 0 and edept = List.nth ecols 2 in
  let j = Join { kind = Inner; pred = Cmp (Eq, ColRef edept, ColRef did); left = dept_scan; right = emp_scan } in
  (match Rules.Correlated.join_to_apply ~cat:(cat ()) j with
  | None -> Alcotest.fail "indexed apply should fire"
  | Some a ->
      check_equiv "apply equals join" j a;
      (match a with Apply _ -> () | _ -> Alcotest.fail "expected Apply"));
  (* no index on dept.dname: the rule must not fire *)
  let dname = List.nth dcols 1 in
  let ename = List.nth ecols 1 in
  let j2 =
    Join
      { kind = Inner; pred = Cmp (Eq, ColRef ename, ColRef dname); left = emp_scan;
        right = dept_scan
      }
  in
  Alcotest.(check bool) "no index, no apply" true
    (Rules.Correlated.join_to_apply ~cat:(cat ()) j2 = None)

let test_join_assoc_derives_equality () =
  (* (a ⋈ b) ⋈ c with a=b and b=c: associating (a,c) derives a=c *)
  let mk name = Col.fresh name Value.TInt in
  let xa = mk "xa" and xb = mk "xb" and xc = mk "xc" in
  let t v c = ConstTable { cols = [ c ]; rows = [ [| Value.Int v |]; [| Value.Int (v + 1) |] ] } in
  let inner = Join { kind = Inner; pred = Cmp (Eq, ColRef xa, ColRef xb); left = t 1 xa; right = t 1 xb } in
  let outer = Join { kind = Inner; pred = Cmp (Eq, ColRef xb, ColRef xc); left = inner; right = t 1 xc } in
  let variants = List.filter_map (fun x -> x) (Rules.Join_rules.associate outer) in
  Alcotest.(check bool) "some variant" true (variants <> []);
  List.iter (fun v -> check_equiv "assoc preserves semantics" outer v) variants

let test_join_commute () =
  let j, _, _, _ = join_over_groupby () in
  match Rules.Join_rules.commute j with
  | None -> Alcotest.fail "commute fires on inner joins"
  | Some c -> check_equiv "commute preserves semantics" j c

let suite =
  [ Alcotest.test_case "pull groupby above join" `Quick test_pull_groupby_above_join;
    Alcotest.test_case "pull blocked without key" `Quick test_pull_blocked_without_key;
    Alcotest.test_case "pull blocked on agg pred" `Quick test_pull_blocked_on_agg_pred;
    Alcotest.test_case "push groupby below join" `Quick test_push_groupby_below_join;
    Alcotest.test_case "push blocked mixed aggs" `Quick test_push_blocked_mixed_aggs;
    Alcotest.test_case "push below outerjoin + compensation" `Quick
      test_push_below_outerjoin_with_compensation;
    Alcotest.test_case "filter/groupby commute" `Quick test_filter_groupby_commute;
    Alcotest.test_case "semijoin/groupby reorder" `Quick test_semijoin_groupby_reorder;
    Alcotest.test_case "local agg split" `Quick test_local_agg_split;
    Alcotest.test_case "local agg all functions" `Quick test_local_agg_split_all_functions;
    Alcotest.test_case "eager aggregation" `Quick test_eager_aggregation;
    Alcotest.test_case "eager aggregation keyless" `Quick test_eager_aggregation_no_key_needed;
    Alcotest.test_case "segment apply intro" `Quick test_segment_apply_intro;
    Alcotest.test_case "segment apply negative" `Quick test_segment_apply_no_fire_on_different_tables;
    Alcotest.test_case "segment apply join pushdown" `Quick test_segment_apply_join_pushdown;
    Alcotest.test_case "join to indexed apply" `Quick test_join_to_indexed_apply;
    Alcotest.test_case "join assoc derives equality" `Quick test_join_assoc_derives_equality;
    Alcotest.test_case "join commute" `Quick test_join_commute
  ]
