(* Unit tests for the Apply-removal identities (paper Figure 4),
   exercised on constructed trees (not via SQL), each checked for both
   shape and semantics against the toy database. *)

open Relalg
open Relalg.Algebra

let db = lazy (Support.toy_db ())

let cat () = (Lazy.force db).Storage.Database.catalog
let env () = Catalog.props_env (cat ())

let cfg ?(class2 = false) () : Normalize.Decorrelate.config =
  { env = env (); class2 }

let fresh_scan table =
  let def = Option.get (Catalog.find_table (cat ()) table) in
  let cols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty) def.columns in
  (TableScan { table; cols }, cols)

let emp () = fresh_scan "emp"
let dept () = fresh_scan "dept"

let run o = Support.run_op (Lazy.force db) o
let check_equiv msg a b = Support.check_same_bag msg (run a) (run b)

let no_apply o = not (Op.exists_op (function Apply _ -> true | _ -> false) o)

let remove ?class2 o = Normalize.Decorrelate.remove (cfg ?class2 ()) o

(* --- identities (1)/(2): uncorrelated right side --------------------- *)

let test_identity_1_2 () =
  let d, _ = dept () in
  let e, ecols = emp () in
  let esal = List.nth ecols 3 in
  (* uncorrelated inner with a predicate on both sides *)
  List.iter
    (fun kind ->
      let a =
        Apply { kind; pred = Cmp (Gt, ColRef esal, Const (Value.Float 150.)); left = d; right = e }
      in
      let r = remove a in
      Alcotest.(check bool) (join_kind_name kind ^ " becomes join") true (no_apply r);
      check_equiv (join_kind_name kind ^ " equivalent") a r)
    [ Inner; LeftOuter; Semi; Anti ]

(* --- identity (3): select merge --------------------------------------- *)

let test_select_merge () =
  let d, dcols = dept () in
  let e, ecols = emp () in
  let did = List.hd dcols and edept = List.nth ecols 2 in
  (* correlated select below the apply merges into the predicate slot *)
  let inner = Select (Cmp (Eq, ColRef edept, ColRef did), e) in
  List.iter
    (fun kind ->
      let a = Apply { kind; pred = true_; left = d; right = inner } in
      let r = remove a in
      Alcotest.(check bool) (join_kind_name kind ^ " flattens") true (no_apply r);
      check_equiv (join_kind_name kind ^ " equivalent") a r)
    [ Inner; LeftOuter; Semi; Anti ]

(* --- identity (4): project pushdown ----------------------------------- *)

let test_project_cross () =
  let d, dcols = dept () in
  let e, ecols = emp () in
  let did = List.hd dcols and edept = List.nth ecols 2 and esal = List.nth ecols 3 in
  let out = Col.fresh "x2" Value.TFloat in
  let inner =
    Project
      ( [ { expr = Arith (Mul, ColRef esal, Const (Value.Float 2.)); out } ],
        Select (Cmp (Eq, ColRef edept, ColRef did), e) )
  in
  let a = Apply { kind = Inner; pred = true_; left = d; right = inner } in
  let r = remove a in
  Alcotest.(check bool) "cross project flattens" true (no_apply r);
  check_equiv "cross project equivalent" a r

let test_project_outer_strict_and_guarded () =
  let d, dcols = dept () in
  let e, ecols = emp () in
  let did = List.hd dcols and edept = List.nth ecols 2 and esal = List.nth ecols 3 in
  (* strict projection over the nullable side: plain pull-up *)
  let out = Col.fresh "x2" Value.TFloat in
  let strict_inner =
    Project
      ( [ { expr = Arith (Add, ColRef esal, Const (Value.Float 1.)); out } ],
        Select (Cmp (Eq, ColRef edept, ColRef did), e) )
  in
  let a1 = Apply { kind = LeftOuter; pred = true_; left = d; right = strict_inner } in
  let r1 = remove a1 in
  Alcotest.(check bool) "strict outer project flattens" true (no_apply r1);
  check_equiv "strict outer project equivalent" a1 r1;
  (* NON-strict projection (a constant): must be NULL on unmatched
     outer rows — requires the match guard *)
  let e2, ecols2 = emp () in
  let edept2 = List.nth ecols2 2 in
  let out2 = Col.fresh "k" Value.TInt in
  let const_inner =
    Project
      ( [ { expr = Const (Value.Int 7); out = out2 } ],
        Select (Cmp (Eq, ColRef edept2, ColRef did), e2) )
  in
  let a2 = Apply { kind = LeftOuter; pred = true_; left = d; right = const_inner } in
  let r2 = remove a2 in
  check_equiv "guarded constant project equivalent" a2 r2;
  (* dept 3 (hr) has no emps: its k must be NULL, not 7 *)
  let rows = Support.bag (run r2) in
  Alcotest.(check bool) "hr padded with NULL" true
    (List.exists (fun s -> Support.contains s "3|hr|NULL") rows)

(* --- identity (8): vector GroupBy under cross Apply ------------------- *)

let test_identity_8 () =
  let d, dcols = dept () in
  let e, ecols = emp () in
  let did = List.hd dcols in
  let edept = List.nth ecols 2 and esal = List.nth ecols 3 and eid = List.hd ecols in
  let s = { fn = Sum (ColRef esal); out = Col.fresh "s" Value.TFloat } in
  let inner =
    GroupBy
      { keys = [ eid ];
        aggs = [ s ];
        input = Select (Cmp (Eq, ColRef edept, ColRef did), e)
      }
  in
  let a = Apply { kind = Inner; pred = true_; left = d; right = inner } in
  let r = remove a in
  Alcotest.(check bool) "identity 8 flattens" true (no_apply r);
  check_equiv "identity 8 equivalent" a r;
  (* shape: GroupBy keys extended with the outer's columns *)
  let rec find_g o =
    match o with
    | GroupBy { keys; _ } -> Some keys
    | _ -> List.find_map find_g (Op.children o)
  in
  match find_g r with
  | Some keys -> Alcotest.(check bool) "keys extended" true (List.length keys > 1)
  | None -> Alcotest.fail "no groupby"

(* --- identity (9): ScalarAgg with count adjustment --------------------- *)

let test_identity_9_count_star () =
  let d, dcols = dept () in
  let e, ecols = emp () in
  let did = List.hd dcols and edept = List.nth ecols 2 in
  let cnt = { fn = CountStar; out = Col.fresh "n" Value.TInt } in
  let inner =
    ScalarAgg { aggs = [ cnt ]; input = Select (Cmp (Eq, ColRef edept, ColRef did), e) }
  in
  let a = Apply { kind = Inner; pred = true_; left = d; right = inner } in
  let r = remove a in
  Alcotest.(check bool) "identity 9 flattens count-star" true (no_apply r);
  check_equiv "identity 9 count-star equivalent" a r;
  (* the empty department must count 0, not NULL *)
  let rows = Support.bag (run r) in
  Alcotest.(check bool) "hr counts 0" true
    (List.exists (fun s -> Support.contains s "3|hr|0") rows)

let test_identity_9_all_aggs () =
  let d, dcols = dept () in
  let did = List.hd dcols in
  let mk_inner fn_name =
    let e, ecols = emp () in
    let edept = List.nth ecols 2 and esal = List.nth ecols 3 in
    let fn =
      match fn_name with
      | "sum" -> Sum (ColRef esal)
      | "min" -> Min (ColRef esal)
      | "max" -> Max (ColRef esal)
      | "avg" -> Avg (ColRef esal)
      | _ -> Count (ColRef esal)
    in
    ScalarAgg
      { aggs = [ { fn; out = Col.fresh fn_name Value.TFloat } ];
        input = Select (Cmp (Eq, ColRef edept, ColRef did), e)
      }
  in
  List.iter
    (fun fn_name ->
      let a = Apply { kind = Inner; pred = true_; left = d; right = mk_inner fn_name } in
      let r = remove a in
      Alcotest.(check bool) (fn_name ^ " flattens") true (no_apply r);
      check_equiv (fn_name ^ " equivalent") a r)
    [ "sum"; "min"; "max"; "avg"; "count" ]

(* --- semi/anti over ScalarAgg and generic fallbacks -------------------- *)

let test_semi_anti_over_scalar_agg () =
  let d, dcols = dept () in
  let did = List.hd dcols in
  let mk () =
    let e, ecols = emp () in
    let edept = List.nth ecols 2 and esal = List.nth ecols 3 in
    ScalarAgg
      { aggs = [ { fn = Sum (ColRef esal); out = Col.fresh "s" Value.TFloat } ];
        input = Select (Cmp (Eq, ColRef edept, ColRef did), e)
      }
  in
  let pred inner =
    Cmp (Gt, ColRef (List.hd (Op.schema inner)), Const (Value.Float 250.))
  in
  let i1 = mk () in
  let a_semi = Apply { kind = Semi; pred = pred i1; left = d; right = i1 } in
  let r_semi = remove a_semi in
  Alcotest.(check bool) "semi over scalar agg flattens" true (no_apply r_semi);
  check_equiv "semi equivalent" a_semi r_semi;
  let i2 = mk () in
  let a_anti = Apply { kind = Anti; pred = pred i2; left = d; right = i2 } in
  let r_anti = remove a_anti in
  Alcotest.(check bool) "anti over scalar agg flattens" true (no_apply r_anti);
  check_equiv "anti equivalent" a_anti r_anti;
  (* anti keeps rows where the comparison is UNKNOWN (sum NULL) *)
  let anti_rows = Support.bag (run r_anti) in
  Alcotest.(check bool) "hr kept by anti (sum is NULL)" true
    (List.exists (fun s -> Support.contains s "3|hr") anti_rows)

let test_semi_generic_fallback_over_groupby () =
  (* semijoin against a correlated vector GroupBy: the count-based
     fallback must flatten it *)
  let d, dcols = dept () in
  let did = List.hd dcols in
  let e, ecols = emp () in
  let edept = List.nth ecols 2 and esal = List.nth ecols 3 and eid = List.hd ecols in
  let s = { fn = Sum (ColRef esal); out = Col.fresh "s" Value.TFloat } in
  let inner =
    GroupBy
      { keys = [ eid ]; aggs = [ s ];
        input = Select (Cmp (Eq, ColRef edept, ColRef did), e)
      }
  in
  let pred = Cmp (Gt, ColRef s.out, Const (Value.Float 150.)) in
  let a = Apply { kind = Semi; pred; left = d; right = inner } in
  let r = remove a in
  Alcotest.(check bool) "semi generic flattens" true (no_apply r);
  check_equiv "semi generic equivalent" a r

(* --- class 2 identities ------------------------------------------------ *)

let test_class2_union_identity_5 () =
  let d, dcols = dept () in
  let did = List.hd dcols in
  let mk_branch () =
    let e, ecols = emp () in
    let edept = List.nth ecols 2 in
    let out = Col.fresh "v" Value.TInt in
    Project
      ( [ { expr = ColRef (List.hd ecols); out } ],
        Select (Cmp (Eq, ColRef edept, ColRef did), e) )
  in
  let u = UnionAll (mk_branch (), mk_branch ()) in
  let a = Apply { kind = Inner; pred = true_; left = d; right = u } in
  (* without class2: stuck *)
  let r_off = remove a in
  Alcotest.(check bool) "kept correlated without class2" false (no_apply r_off);
  check_equiv "still equivalent" a r_off;
  (* with class2: identity (5) fires *)
  let r_on = remove ~class2:true a in
  Alcotest.(check bool) "flattens with class2" true (no_apply r_on);
  check_equiv "identity 5 equivalent" a r_on

let test_class2_scalar_agg_over_union () =
  (* the paper's Class 2 example shape: scalar aggregate over a
     correlated UNION ALL *)
  let d, dcols = dept () in
  let did = List.hd dcols in
  let mk_branch () =
    let e, ecols = emp () in
    let edept = List.nth ecols 2 and esal = List.nth ecols 3 in
    let out = Col.fresh "v" Value.TFloat in
    Project
      ( [ { expr = ColRef esal; out } ],
        Select (Cmp (Eq, ColRef edept, ColRef did), e) )
  in
  let u = UnionAll (mk_branch (), mk_branch ()) in
  let sum = { fn = Sum (ColRef (List.hd (Op.schema u))); out = Col.fresh "s" Value.TFloat } in
  let inner = ScalarAgg { aggs = [ sum ]; input = u } in
  let a = Apply { kind = LeftOuter; pred = true_; left = d; right = inner } in
  let r_off = remove a in
  Alcotest.(check bool) "kept correlated without class2" false (no_apply r_off);
  let r_on = remove ~class2:true a in
  Alcotest.(check bool) "flattens with class2" true (no_apply r_on);
  check_equiv "aggregate-over-union equivalent" a r_on

let test_class2_except_identity_6 () =
  let d, dcols = dept () in
  let did = List.hd dcols in
  let mk_branch pred_extra =
    let e, ecols = emp () in
    let edept = List.nth ecols 2 in
    let out = Col.fresh "v" Value.TInt in
    let base = Cmp (Eq, ColRef edept, ColRef did) in
    let p = match pred_extra with None -> base | Some x -> And (base, x) in
    let p, e =
      match pred_extra with
      | None -> (base, e)
      | Some _ -> (p, e)
    in
    Project ([ { expr = ColRef (List.hd ecols); out } ], Select (p, e))
  in
  let b2 =
    let e, ecols = emp () in
    let esal = List.nth ecols 3 in
    let edept = List.nth ecols 2 in
    let out = Col.fresh "v" Value.TInt in
    Project
      ( [ { expr = ColRef (List.hd ecols); out } ],
        Select
          ( And (Cmp (Eq, ColRef edept, ColRef did), Cmp (Gt, ColRef esal, Const (Value.Float 150.))),
            e ) )
  in
  let x = Except (mk_branch None, b2) in
  let a = Apply { kind = Inner; pred = true_; left = d; right = x } in
  let r_on = remove ~class2:true a in
  Alcotest.(check bool) "except flattens with class2" true (no_apply r_on);
  check_equiv "identity 6 equivalent" a r_on

let test_class2_join_identity_7 () =
  (* both join inputs correlated: identity (7) duplicates the outer *)
  let d, dcols = dept () in
  let did = List.hd dcols in
  let mk () =
    let e, ecols = emp () in
    let edept = List.nth ecols 2 in
    (Select (Cmp (Eq, ColRef edept, ColRef did), e), ecols)
  in
  let b1, c1 = mk () in
  let b2, c2 = mk () in
  let j =
    Join
      { kind = Inner;
        pred = Cmp (Eq, ColRef (List.hd c1), ColRef (List.hd c2));
        left = b1;
        right = b2
      }
  in
  let a = Apply { kind = Inner; pred = true_; left = d; right = j } in
  let r_off = remove a in
  check_equiv "kept correlated still equivalent" a r_off;
  let r_on = remove ~class2:true a in
  Alcotest.(check bool) "identity 7 flattens" true (no_apply r_on);
  check_equiv "identity 7 equivalent" a r_on

(* --- one-sided correlated joins ---------------------------------------- *)

let test_one_sided_join_left_and_right () =
  let d, dcols = dept () in
  let did = List.hd dcols in
  (* correlated branch ⋈ uncorrelated branch, correlation on the left *)
  let e1, c1 = emp () in
  let corr = Select (Cmp (Eq, ColRef (List.nth c1 2), ColRef did), e1) in
  let e2, c2 = emp () in
  let j_left =
    Join
      { kind = Inner;
        pred = Cmp (Eq, ColRef (List.hd c1), ColRef (List.hd c2));
        left = corr;
        right = e2
      }
  in
  let a1 = Apply { kind = Inner; pred = true_; left = d; right = j_left } in
  let r1 = remove a1 in
  Alcotest.(check bool) "left-correlated join flattens" true (no_apply r1);
  check_equiv "left-correlated equivalent" a1 r1;
  (* correlation on the right side *)
  let e3, c3 = emp () in
  let e4, c4 = emp () in
  let corr4 = Select (Cmp (Eq, ColRef (List.nth c4 2), ColRef did), e4) in
  let j_right =
    Join
      { kind = Inner;
        pred = Cmp (Eq, ColRef (List.hd c3), ColRef (List.hd c4));
        left = e3;
        right = corr4
      }
  in
  let a2 = Apply { kind = Inner; pred = true_; left = d; right = j_right } in
  let r2 = remove a2 in
  Alcotest.(check bool) "right-correlated join flattens" true (no_apply r2);
  check_equiv "right-correlated equivalent" a2 r2

let test_outerjoin_left_correlated () =
  let d, dcols = dept () in
  let did = List.hd dcols in
  let e1, c1 = emp () in
  let corr = Select (Cmp (Eq, ColRef (List.nth c1 2), ColRef did), e1) in
  let e2, c2 = emp () in
  let j =
    Join
      { kind = LeftOuter;
        pred = Cmp (Lt, ColRef (List.nth c1 3), ColRef (List.nth c2 3));
        left = corr;
        right = e2
      }
  in
  let a = Apply { kind = Inner; pred = true_; left = d; right = j } in
  let r = remove a in
  Alcotest.(check bool) "outerjoin with correlated preserved side flattens" true (no_apply r);
  check_equiv "outerjoin equivalent" a r

(* --- Max1row ------------------------------------------------------------- *)

let test_max1row_handling () =
  let d, dcols = dept () in
  let did = List.hd dcols in
  (* provably single row (key equality): Max1row elided, flattens *)
  let e1, c1 = emp () in
  let single = Max1row (Select (Cmp (Eq, ColRef (List.hd c1), ColRef did), e1)) in
  let a1 = Apply { kind = LeftOuter; pred = true_; left = d; right = single } in
  let r1 = remove a1 in
  Alcotest.(check bool) "max1row elided on key" true (no_apply r1);
  check_equiv "elided equivalent" a1 r1;
  (* not provable: stays correlated *)
  let e2, c2 = emp () in
  let multi = Max1row (Select (Cmp (Eq, ColRef (List.nth c2 2), ColRef did), e2)) in
  let a2 = Apply { kind = LeftOuter; pred = true_; left = d; right = multi } in
  let r2 = remove a2 in
  Alcotest.(check bool) "max1row kept otherwise" false (no_apply r2)

(* --- Rownum key manufacturing ------------------------------------------- *)

let test_keyless_outer_gets_rownum () =
  (* the keyless bag table as the outer of a scalar-agg apply: identity
     (9) requires a key, which Rownum manufactures *)
  let b, bcols = fresh_scan "bag" in
  let bx = List.hd bcols in
  let e, ecols = emp () in
  let edept = List.nth ecols 2 and esal = List.nth ecols 3 in
  let inner =
    ScalarAgg
      { aggs = [ { fn = Sum (ColRef esal); out = Col.fresh "s" Value.TFloat } ];
        input = Select (Cmp (Eq, ColRef edept, ColRef bx), e)
      }
  in
  let a = Apply { kind = Inner; pred = true_; left = b; right = inner } in
  let r = remove a in
  Alcotest.(check bool) "flattens via rownum" true (no_apply r);
  Alcotest.(check bool) "rownum present" true
    (Op.exists_op (function Rownum _ -> true | _ -> false) r);
  (* bag duplicates must be preserved; the manufactured key is part of
     the decorrelated schema, so compare on the original columns only *)
  let visible = Op.schema a in
  let narrow o = Project (List.map (fun c -> { expr = ColRef c; out = c }) visible, o) in
  check_equiv "bag duplicates preserved" (narrow a) (narrow r)

let suite =
  [ Alcotest.test_case "identities (1)/(2)" `Quick test_identity_1_2;
    Alcotest.test_case "identity (3): select merge" `Quick test_select_merge;
    Alcotest.test_case "identity (4): project, cross" `Quick test_project_cross;
    Alcotest.test_case "identity (4): project, outer" `Quick test_project_outer_strict_and_guarded;
    Alcotest.test_case "identity (8)" `Quick test_identity_8;
    Alcotest.test_case "identity (9): count-star" `Quick test_identity_9_count_star;
    Alcotest.test_case "identity (9): all aggregates" `Quick test_identity_9_all_aggs;
    Alcotest.test_case "semi/anti over scalar agg" `Quick test_semi_anti_over_scalar_agg;
    Alcotest.test_case "semi generic fallback" `Quick test_semi_generic_fallback_over_groupby;
    Alcotest.test_case "class 2: identity (5)" `Quick test_class2_union_identity_5;
    Alcotest.test_case "class 2: agg over union" `Quick test_class2_scalar_agg_over_union;
    Alcotest.test_case "class 2: identity (6)" `Quick test_class2_except_identity_6;
    Alcotest.test_case "class 2: identity (7)" `Quick test_class2_join_identity_7;
    Alcotest.test_case "one-sided correlated joins" `Quick test_one_sided_join_left_and_right;
    Alcotest.test_case "outerjoin left-correlated" `Quick test_outerjoin_left_correlated;
    Alcotest.test_case "max1row elision/retention" `Quick test_max1row_handling;
    Alcotest.test_case "rownum key manufacturing" `Quick test_keyless_outer_gets_rownum
  ]
