(* Tests for the cleanup/pushdown normalization pass (Simplify) and the
   column pruner (Prune). *)

open Relalg
open Relalg.Algebra

let db = lazy (Support.toy_db ())

let cat () = (Lazy.force db).Storage.Database.catalog
let env () = Catalog.props_env (cat ())

let fresh_scan table =
  let def = Option.get (Catalog.find_table (cat ()) table) in
  let cols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty) def.columns in
  (TableScan { table; cols }, cols)

let run o = Support.run_op (Lazy.force db) o
let check_equiv msg a b = Support.check_same_bag msg (run a) (run b)

let shape = Pp.shape

(* --- constant folding ------------------------------------------------ *)

let test_const_fold () =
  let f = Normalize.Simplify.const_fold in
  Alcotest.(check bool) "true AND p collapses" true
    (f (And (Const (Value.Bool true), Const (Value.Bool false))) = Const (Value.Bool false));
  Alcotest.(check bool) "p OR true is true" true
    (f (Or (IsNull (Const Value.Null), Const (Value.Bool true))) = Const (Value.Bool true));
  Alcotest.(check bool) "1 < 2 folds" true
    (f (Cmp (Lt, Const (Value.Int 1), Const (Value.Int 2))) = Const (Value.Bool true));
  Alcotest.(check bool) "null comparisons do not fold" true
    (match f (Cmp (Eq, Const Value.Null, Const (Value.Int 1))) with Cmp _ -> true | _ -> false);
  Alcotest.(check bool) "not folds" true
    (f (Not (Const (Value.Bool false))) = Const (Value.Bool true))

let test_select_true_elided () =
  let e, _ = fresh_scan "emp" in
  Alcotest.(check string) "select true gone" (shape e)
    (shape (Normalize.Simplify.cleanup (Select (true_, e))))

let test_select_merge () =
  let e, cols = fresh_scan "emp" in
  let esal = List.nth cols 3 in
  let t =
    Select
      ( Cmp (Gt, ColRef esal, Const (Value.Float 100.)),
        Select (Cmp (Lt, ColRef esal, Const (Value.Float 400.)), e) )
  in
  let c = Normalize.Simplify.cleanup t in
  (match c with
  | Select (_, TableScan _) -> ()
  | _ -> Alcotest.failf "expected merged select, got\n%s" (Pp.to_string c));
  check_equiv "merge equivalent" t c

let test_identity_project_elided () =
  let e, cols = fresh_scan "emp" in
  let p = Project (List.map (fun c -> { expr = ColRef c; out = c }) cols, e) in
  Alcotest.(check string) "identity project gone" (shape e)
    (shape (Normalize.Simplify.cleanup p))

let test_project_merge () =
  let e, cols = fresh_scan "emp" in
  let esal = List.nth cols 3 in
  let mid = Col.fresh "x" Value.TFloat in
  let out = Col.fresh "y" Value.TFloat in
  let t =
    Project
      ( [ { expr = Arith (Add, ColRef mid, Const (Value.Float 1.)); out } ],
        Project ([ { expr = Arith (Mul, ColRef esal, Const (Value.Float 2.)); out = mid } ], e)
      )
  in
  let c = Normalize.Simplify.cleanup t in
  (match c with
  | Project ([ { expr = Arith (Add, Arith (Mul, _, _), _); _ } ], TableScan _) -> ()
  | _ -> Alcotest.failf "expected merged project, got\n%s" (Pp.to_string c));
  check_equiv "project merge equivalent" t c

let test_conjunct_dedup () =
  let e, cols = fresh_scan "emp" in
  let eid = List.hd cols and esal = List.nth cols 3 in
  let c1 = Cmp (Eq, ColRef eid, ColRef esal) in
  let c2 = Cmp (Eq, ColRef esal, ColRef eid) in
  let t = Select (And (c1, And (c2, c1)), e) in
  match Normalize.Simplify.cleanup t with
  | Select (p, _) ->
      Alcotest.(check int) "one conjunct kept" 1 (List.length (conjuncts p))
  | _ -> Alcotest.fail "expected select"

(* --- predicate pushdown ---------------------------------------------- *)

let test_push_into_join_sides () =
  let e, ecols = fresh_scan "emp" in
  let d, dcols = fresh_scan "dept" in
  let edept = List.nth ecols 2 and esal = List.nth ecols 3 in
  let did = List.hd dcols and dname = List.nth dcols 1 in
  let t =
    Select
      ( conj_list
          [ Cmp (Eq, ColRef edept, ColRef did);
            Cmp (Gt, ColRef esal, Const (Value.Float 150.));
            Cmp (Ne, ColRef dname, Const (Value.Str "hr"))
          ],
        Join { kind = Inner; pred = true_; left = e; right = d } )
  in
  let s = Normalize.Simplify.simplify t in
  check_equiv "pushdown equivalent" t s;
  (* the single-side conjuncts must sit directly above the scans *)
  (match s with
  | Join { left = Select (_, TableScan _); right = Select (_, TableScan _); pred; _ } ->
      Alcotest.(check int) "join keeps the equi conjunct" 1 (List.length (conjuncts pred))
  | _ -> Alcotest.failf "unexpected shape:\n%s" (Pp.to_string s))

let test_no_push_into_outerjoin_left_pred () =
  (* a LOJ's ON-clause conjunct that references only the preserved side
     must NOT become a filter on it *)
  let e, ecols = fresh_scan "emp" in
  let d, dcols = fresh_scan "dept" in
  let edept = List.nth ecols 2 and esal = List.nth ecols 3 in
  let did = List.hd dcols in
  let t =
    Join
      { kind = LeftOuter;
        pred = And (Cmp (Eq, ColRef edept, ColRef did), Cmp (Gt, ColRef esal, Const (Value.Float 150.)));
        left = e;
        right = d
      }
  in
  let s = Normalize.Simplify.simplify t in
  check_equiv "outerjoin pred stays" t s;
  (* emp rows with salary <= 150 must still appear (padded) *)
  let rows = Support.bag (run s) in
  Alcotest.(check bool) "ann padded, not dropped" true
    (List.exists (fun r -> Support.contains r "ann") rows)

let test_push_into_outerjoin_right_pred () =
  (* a LOJ ON-conjunct on the inner side alone MAY move into the inner
     input *)
  let e, ecols = fresh_scan "emp" in
  let d, dcols = fresh_scan "dept" in
  let edept = List.nth ecols 2 in
  let did = List.hd dcols and dname = List.nth dcols 1 in
  let t =
    Join
      { kind = LeftOuter;
        pred = And (Cmp (Eq, ColRef edept, ColRef did), Cmp (Eq, ColRef dname, Const (Value.Str "eng")));
        left = e;
        right = d
      }
  in
  let s = Normalize.Simplify.simplify t in
  check_equiv "right-side push equivalent" t s

let test_push_through_groupby_on_keys () =
  let e, ecols = fresh_scan "emp" in
  let edept = List.nth ecols 2 and esal = List.nth ecols 3 in
  let s_out = Col.fresh "s" Value.TFloat in
  let g = GroupBy { keys = [ edept ]; aggs = [ { fn = Sum (ColRef esal); out = s_out } ]; input = e } in
  let t = Select (Cmp (Eq, ColRef edept, Const (Value.Int 1)), g) in
  let s = Normalize.Simplify.simplify t in
  check_equiv "groupby push equivalent" t s;
  (match s with
  | GroupBy { input = Select (_, TableScan _); _ } -> ()
  | _ -> Alcotest.failf "expected filter below groupby:\n%s" (Pp.to_string s));
  (* a filter on the aggregate stays above *)
  let t2 = Select (Cmp (Gt, ColRef s_out, Const (Value.Float 200.)), g) in
  let s2 = Normalize.Simplify.simplify t2 in
  check_equiv "agg filter stays" t2 s2;
  match s2 with
  | Select (_, GroupBy _) -> ()
  | _ -> Alcotest.failf "expected filter above groupby:\n%s" (Pp.to_string s2)

let test_push_through_project_substitutes () =
  let e, ecols = fresh_scan "emp" in
  let esal = List.nth ecols 3 in
  let out = Col.fresh "double_sal" Value.TFloat in
  let p = Project ([ { expr = Arith (Mul, ColRef esal, Const (Value.Float 2.)); out } ], e) in
  let t = Select (Cmp (Gt, ColRef out, Const (Value.Float 500.)), p) in
  let s = Normalize.Simplify.simplify t in
  check_equiv "project substitution equivalent" t s;
  match s with
  | Project (_, Select (_, TableScan _)) -> ()
  | _ -> Alcotest.failf "expected pushed filter:\n%s" (Pp.to_string s)

(* --- pruning ----------------------------------------------------------- *)

let prune required o = Normalize.Prune.prune ~env:(env ()) required o

let test_prune_groupby_keys_via_fd () =
  let e, ecols = fresh_scan "emp" in
  let eid = List.hd ecols and ename = List.nth ecols 1 and esal = List.nth ecols 3 in
  let s_out = Col.fresh "s" Value.TFloat in
  (* grouping by (eid, name): name is determined by the key eid *)
  let g =
    GroupBy { keys = [ eid; ename ]; aggs = [ { fn = Sum (ColRef esal); out = s_out } ]; input = e }
  in
  let p = prune (Col.Set.of_list [ eid; s_out ]) g in
  (match p with
  | GroupBy { keys = [ k ]; _ } -> Alcotest.(check bool) "kept eid" true (Col.equal k eid)
  | _ -> Alcotest.failf "expected single-key groupby:\n%s" (Pp.to_string p));
  (* results agree on the surviving columns *)
  let narrow o = Project ([ { expr = ColRef eid; out = eid }; { expr = ColRef s_out; out = s_out } ], o) in
  check_equiv "prune equivalent" (narrow g) (narrow p)

let test_prune_never_merges_groups () =
  (* grouping by name only (no key): pruning must NOT drop it even if
     unreferenced above, because nothing determines it *)
  let e, ecols = fresh_scan "emp" in
  let ename = List.nth ecols 1 and esal = List.nth ecols 3 in
  let s_out = Col.fresh "s" Value.TFloat in
  let g =
    GroupBy { keys = [ ename ]; aggs = [ { fn = Sum (ColRef esal); out = s_out } ]; input = e }
  in
  match prune (Col.Set.singleton s_out) g with
  | GroupBy { keys = [ k ]; _ } -> Alcotest.(check bool) "name kept" true (Col.equal k ename)
  | o -> Alcotest.failf "unexpected prune result:\n%s" (Pp.to_string o)

let test_prune_drops_unused_aggs () =
  let e, ecols = fresh_scan "emp" in
  let edept = List.nth ecols 2 and esal = List.nth ecols 3 in
  let s1 = Col.fresh "s1" Value.TFloat and s2 = Col.fresh "s2" Value.TFloat in
  let g =
    GroupBy
      { keys = [ edept ];
        aggs =
          [ { fn = Sum (ColRef esal); out = s1 }; { fn = Min (ColRef esal); out = s2 } ];
        input = e
      }
  in
  match prune (Col.Set.of_list [ edept; s1 ]) g with
  | GroupBy { aggs = [ a ]; _ } -> Alcotest.(check bool) "kept sum" true (Col.equal a.out s1)
  | o -> Alcotest.failf "unexpected:\n%s" (Pp.to_string o)

let test_prune_keeps_apply_correlation () =
  (* the left side of an Apply must keep columns the right side
     references, even if no one above needs them *)
  let d, dcols = fresh_scan "dept" in
  let did = List.hd dcols in
  let e, ecols = fresh_scan "emp" in
  let edept = List.nth ecols 2 in
  let a =
    Apply
      { kind = Semi; pred = true_;
        left = d;
        right = Select (Cmp (Eq, ColRef edept, ColRef did), e)
      }
  in
  let dname = List.nth dcols 1 in
  let p = prune (Col.Set.singleton dname) a in
  check_equiv "apply prune equivalent" a p

let test_prune_union_untouched () =
  let mk () =
    let e, ecols = fresh_scan "emp" in
    Project
      ( [ { expr = ColRef (List.hd ecols); out = Col.fresh "v" Value.TInt };
          { expr = ColRef (List.nth ecols 3); out = Col.fresh "w" Value.TFloat }
        ],
        e )
  in
  let u = UnionAll (mk (), mk ()) in
  let out = List.hd (Op.schema u) in
  let p = prune (Col.Set.singleton out) u in
  Alcotest.(check int) "arity preserved" 2 (List.length (Op.schema p));
  check_equiv "union prune equivalent" u p

let suite =
  [ Alcotest.test_case "constant folding" `Quick test_const_fold;
    Alcotest.test_case "select true elided" `Quick test_select_true_elided;
    Alcotest.test_case "select merge" `Quick test_select_merge;
    Alcotest.test_case "identity project elided" `Quick test_identity_project_elided;
    Alcotest.test_case "project merge" `Quick test_project_merge;
    Alcotest.test_case "conjunct dedup" `Quick test_conjunct_dedup;
    Alcotest.test_case "push into join sides" `Quick test_push_into_join_sides;
    Alcotest.test_case "no push into outerjoin left" `Quick test_no_push_into_outerjoin_left_pred;
    Alcotest.test_case "push into outerjoin right" `Quick test_push_into_outerjoin_right_pred;
    Alcotest.test_case "push through groupby keys" `Quick test_push_through_groupby_on_keys;
    Alcotest.test_case "push through project" `Quick test_push_through_project_substitutes;
    Alcotest.test_case "prune groupby keys via FD" `Quick test_prune_groupby_keys_via_fd;
    Alcotest.test_case "prune never merges groups" `Quick test_prune_never_merges_groups;
    Alcotest.test_case "prune drops unused aggs" `Quick test_prune_drops_unused_aggs;
    Alcotest.test_case "prune keeps apply correlation" `Quick test_prune_keeps_apply_correlation;
    Alcotest.test_case "prune union untouched" `Quick test_prune_union_untouched
  ]
