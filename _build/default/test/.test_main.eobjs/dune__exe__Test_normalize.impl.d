test/test_normalize.ml: Alcotest Catalog Lazy List Normalize Op Pp Relalg Sqlfront Storage Support
