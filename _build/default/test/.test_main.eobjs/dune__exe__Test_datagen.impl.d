test/test_datagen.ml: Alcotest Array Datagen Hashtbl Lazy List Option Relalg Storage String Value
