test/test_integration.ml: Alcotest Lazy List Optimizer Support
