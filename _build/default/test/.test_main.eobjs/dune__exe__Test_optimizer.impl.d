test/test_optimizer.ml: Alcotest Catalog Col Datagen Engine Lazy List Op Optimizer Option Relalg Storage Support Value
