test/support.ml: Alcotest Algebra Array Catalog Engine Exec List Normalize QCheck_alcotest Relalg Sqlfront Storage String Value
