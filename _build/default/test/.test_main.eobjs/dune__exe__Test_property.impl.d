test/test_property.ml: Alcotest Catalog Gen List Normalize Optimizer Printf QCheck Relalg Sqlfront Storage Support Test
