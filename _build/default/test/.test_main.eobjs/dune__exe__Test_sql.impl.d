test/test_sql.ml: Alcotest Ast Binder Lexer List Normalize Parser Relalg Sqlfront String Support Token
