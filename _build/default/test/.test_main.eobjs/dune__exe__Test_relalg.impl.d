test/test_relalg.ml: Alcotest Col Expr List Op Props Relalg Value
