test/test_exec.ml: Alcotest Array Catalog Col Exec Lazy List Normalize Op Relalg Sqlfront Storage Support Value
