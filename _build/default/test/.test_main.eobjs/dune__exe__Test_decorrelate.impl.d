test/test_decorrelate.ml: Alcotest Catalog Col Lazy List Normalize Op Option Relalg Storage Support Value
