test/test_engine.ml: Alcotest Datagen Engine Lazy List Optimizer Printf Support
