test/test_value.ml: Alcotest QCheck Relalg Support Value
