test/test_paper_features.ml: Alcotest Catalog Col Datagen Exec Lazy List Normalize Op Optimizer Option Relalg Rules Sqlfront Storage Support Value
