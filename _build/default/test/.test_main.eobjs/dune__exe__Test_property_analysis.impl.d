test/test_property_analysis.ml: Array Col Exec Expr Gen Lazy List Normalize Optimizer QCheck Relalg Support Test Value
