test/test_simplify.ml: Alcotest Catalog Col Lazy List Normalize Op Option Pp Relalg Storage Support Value
