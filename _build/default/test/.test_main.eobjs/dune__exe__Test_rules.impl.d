test/test_rules.ml: Alcotest Catalog Col Lazy List Op Option Pp Relalg Rules Storage Support Value
