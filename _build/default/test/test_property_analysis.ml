(* Property tests for the static analyses on scalar expressions: the
   soundness of strictness, null-rejection, constant folding and
   conjunct deduplication is what makes outerjoin simplification and
   identity (9) correct, so these analyses get adversarial random
   testing against the actual evaluator. *)

open QCheck
open Relalg
open Relalg.Algebra

(* three integer columns with fixed ids for the whole suite *)
let c1 = Col.fresh "p1" Value.TInt
let c2 = Col.fresh "p2" Value.TInt
let c3 = Col.fresh "p3" Value.TInt
let all_cols = [ c1; c2; c3 ]

(* type-directed random expressions *)
let rec gen_num depth st : expr =
  if depth = 0 then
    match Gen.int_range 0 4 st with
    | 0 -> ColRef c1
    | 1 -> ColRef c2
    | 2 -> ColRef c3
    | 3 -> Const (Value.Int (Gen.int_range (-5) 5 st))
    | _ -> Const Value.Null
  else
    match Gen.int_range 0 3 st with
    | 0 ->
        let op = Gen.oneofl [ Add; Sub; Mul ] st in
        Arith (op, gen_num (depth - 1) st, gen_num (depth - 1) st)
    | 1 ->
        Case
          ( [ (gen_bool (depth - 1) st, gen_num (depth - 1) st) ],
            if Gen.bool st then Some (gen_num (depth - 1) st) else None )
    | _ -> gen_num 0 st

and gen_bool depth st : expr =
  if depth = 0 then
    match Gen.int_range 0 2 st with
    | 0 -> Cmp (Gen.oneofl [ Eq; Ne; Lt; Le; Gt; Ge ] st, gen_num 0 st, gen_num 0 st)
    | 1 -> IsNull (gen_num 0 st)
    | _ -> Const (Value.Bool (Gen.bool st))
  else
    match Gen.int_range 0 4 st with
    | 0 -> And (gen_bool (depth - 1) st, gen_bool (depth - 1) st)
    | 1 -> Or (gen_bool (depth - 1) st, gen_bool (depth - 1) st)
    | 2 -> Not (gen_bool (depth - 1) st)
    | 3 ->
        Cmp
          ( Gen.oneofl [ Eq; Ne; Lt; Le; Gt; Ge ] st,
            gen_num (depth - 1) st,
            gen_num (depth - 1) st )
    | _ -> IsNull (gen_num (depth - 1) st)

(* a random assignment: each column independently NULL or a small int *)
let gen_assignment st : Value.t array =
  Array.init 3 (fun _ ->
      if Gen.int_range 0 3 st = 0 then Value.Null
      else Value.Int (Gen.int_range (-5) 5 st))

let lookup (a : Value.t array) : Exec.Executor.lookup =
 fun id ->
  if id = c1.Col.id then Some a.(0)
  else if id = c2.Col.id then Some a.(1)
  else if id = c3.Col.id then Some a.(2)
  else None

let dummy_ctx = lazy (Exec.Executor.make_ctx (Support.toy_db ()))

let eval a e = Exec.Executor.eval (Lazy.force dummy_ctx) (lookup a) e

let arb_num = make (fun st -> (gen_num 3 st, gen_assignment st))
let arb_bool = make (fun st -> (gen_bool 3 st, gen_assignment st))

(* 1. strictness: a strict expression on an all-NULL assignment is NULL *)
let prop_strict_sound =
  Test.make ~name:"strict => NULL on all-NULL columns" ~count:800 arb_num
    (fun (e, _) ->
      let all_null = [| Value.Null; Value.Null; Value.Null |] in
      (not (Expr.strict e)) || Value.is_null (eval all_null e))

(* 2. per-column strictness: c in strict_cols e and c NULL => e NULL *)
let prop_strict_cols_sound =
  Test.make ~name:"strict_cols: column NULL => expr NULL" ~count:800 arb_num
    (fun (e, a) ->
      let sc = Expr.strict_cols e in
      List.for_all
        (fun (i, c) ->
          (not (Col.Set.mem c sc))
          || (not (Value.is_null a.(i)))
          || Value.is_null (eval a e))
        [ (0, c1); (1, c2); (2, c3) ])

(* 3. null rejection: a rejected column NULL means the filter is not
   satisfied *)
let prop_null_rejection_sound =
  Test.make ~name:"null_rejected_cols: column NULL => pred not true" ~count:800 arb_bool
    (fun (p, a) ->
      let rejected = Expr.null_rejected_cols p in
      List.for_all
        (fun (i, c) ->
          (not (Col.Set.mem c rejected))
          || (not (Value.is_null a.(i)))
          || eval a p <> Value.Bool true)
        [ (0, c1); (1, c2); (2, c3) ])

(* 4. constant folding preserves evaluation *)
let prop_const_fold_sound =
  Test.make ~name:"const_fold preserves evaluation" ~count:800 arb_bool
    (fun (p, a) ->
      Value.equal (eval a p) (eval a (Normalize.Simplify.const_fold p))
      || (Value.is_null (eval a p) && Value.is_null (eval a (Normalize.Simplify.const_fold p))))

(* 5. conjunct dedup preserves filter semantics (true-ness) *)
let prop_dedup_sound =
  Test.make ~name:"dedup_conjuncts preserves filter truth" ~count:800
    (make (fun st ->
         let n = Gen.int_range 1 4 st in
         let cs = List.init n (fun _ -> gen_bool 2 st) in
         (conj_list (cs @ cs), gen_assignment st)))
    (fun (p, a) ->
      let dd = Normalize.Simplify.dedup_conjuncts p in
      (eval a p = Value.Bool true) = (eval a dd = Value.Bool true))

(* 6. Expr.subst respects evaluation: substituting a column by a
   constant equals evaluating with that binding *)
let prop_subst_sound =
  Test.make ~name:"subst col->const = bind col" ~count:800 arb_num
    (fun (e, a) ->
      let v = a.(0) in
      let substituted = Expr.subst (Col.IdMap.singleton c1.Col.id (Const v)) e in
      let r1 = eval a e in
      let r2 = eval a substituted in
      Value.equal r1 r2 || (Value.is_null r1 && Value.is_null r2))

(* 7. canonicalization: structurally identical trees modulo ids share a
   canonical form; different constants do not *)
let prop_canonical =
  Test.make ~name:"canonical is id-insensitive" ~count:200
    (make (fun st -> gen_bool 2 st))
    (fun p ->
      let mk () =
        let c = Col.fresh "k" Value.TInt in
        Select (Cmp (Gt, ColRef c, Const (Value.Int 0)), Select (p, TableScan { table = "t"; cols = [ c ] }))
      in
      Optimizer.Search.canonical (mk ()) = Optimizer.Search.canonical (mk ()))

let suite =
  [ Support.qtest prop_strict_sound;
    Support.qtest prop_strict_cols_sound;
    Support.qtest prop_null_rejection_sound;
    Support.qtest prop_const_fold_sound;
    Support.qtest prop_dedup_sound;
    Support.qtest prop_subst_sound;
    Support.qtest prop_canonical
  ]
