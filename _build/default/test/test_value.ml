(* Unit + property tests for the value domain. *)

open Relalg

let check_val msg expected actual =
  Alcotest.(check string) msg (Value.to_string expected) (Value.to_string actual)

let test_compare_total_order () =
  Alcotest.(check int) "null = null" 0 (Value.compare Value.Null Value.Null);
  Alcotest.(check bool) "null smallest" true (Value.compare Value.Null (Value.Int (-100)) < 0);
  Alcotest.(check int) "int cross float" 0 (Value.compare (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check bool) "int < float" true (Value.compare (Value.Int 2) (Value.Float 2.5) < 0);
  Alcotest.(check bool) "str order" true (Value.compare (Value.Str "a") (Value.Str "b") < 0)

let test_cmp_sql_null () =
  Alcotest.(check bool) "null vs int is unknown" true
    (Value.cmp_sql Value.Null (Value.Int 1) = None);
  Alcotest.(check bool) "int vs null is unknown" true
    (Value.cmp_sql (Value.Int 1) Value.Null = None);
  Alcotest.(check bool) "1 < 2" true (Value.cmp_sql (Value.Int 1) (Value.Int 2) = Some (-1))

let test_arith () =
  check_val "int add" (Value.Int 7) (Value.arith `Add (Value.Int 3) (Value.Int 4));
  check_val "mixed mul" (Value.Float 7.5) (Value.arith `Mul (Value.Int 3) (Value.Float 2.5));
  check_val "null strict" Value.Null (Value.arith `Add Value.Null (Value.Int 1));
  check_val "div by zero is null" Value.Null (Value.arith `Div (Value.Int 1) (Value.Int 0));
  check_val "int div promotes" (Value.Float 2.5) (Value.arith `Div (Value.Int 5) (Value.Int 2));
  check_val "mod" (Value.Int 1) (Value.arith `Mod (Value.Int 7) (Value.Int 3))

let test_dates () =
  Alcotest.(check string) "epoch" "1970-01-01" (Value.date_to_string 0);
  Alcotest.(check string)
    "1992-01-01" "1992-01-01"
    (Value.date_to_string (Value.date_of_ymd 1992 1 1));
  (match Value.date_of_string "1994-06-15" with
  | Some d -> Alcotest.(check string) "roundtrip" "1994-06-15" (Value.date_to_string d)
  | None -> Alcotest.fail "date_of_string failed");
  Alcotest.(check bool) "bad date" true (Value.date_of_string "not-a-date" = None);
  Alcotest.(check bool) "date order" true
    (Value.compare
       (Value.Date (Value.date_of_ymd 1993 1 1))
       (Value.Date (Value.date_of_ymd 1994 1 1))
    < 0)

let test_hash_consistent_with_equal () =
  (* Int and Float representing the same number must hash alike (they
     compare equal and can meet in one hash-aggregate group) *)
  Alcotest.(check int) "hash 2 = hash 2.0" (Value.hash (Value.Int 2))
    (Value.hash (Value.Float 2.0))

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:500
    QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (a, b) ->
      let va = Relalg.Value.Int a and vb = Relalg.Value.Float (float_of_int b) in
      compare (Relalg.Value.compare va vb) 0 = compare 0 (Relalg.Value.compare vb va))

let prop_date_roundtrip =
  QCheck.Test.make ~name:"date civil roundtrip" ~count:500
    QCheck.(int_range (-30000) 40000)
    (fun d ->
      match Relalg.Value.date_of_string (Relalg.Value.date_to_string d) with
      | Some d' -> d = d'
      | None -> false)

let suite =
  [ Alcotest.test_case "compare total order" `Quick test_compare_total_order;
    Alcotest.test_case "cmp_sql null handling" `Quick test_cmp_sql_null;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "dates" `Quick test_dates;
    Alcotest.test_case "hash/equal consistency" `Quick test_hash_consistent_with_equal;
    Support.qtest prop_compare_antisym;
    Support.qtest prop_date_roundtrip
  ]
