(* Normalization tests: the paper's Section 2 pipeline.

   The Figure 2/3/5 progression is asserted structurally on the paper's
   own query Q1, and every transformation is checked semantically
   against the toy database (all stages produce the same bag). *)

open Relalg
open Relalg.Algebra

let db = lazy (Support.toy_db ())

(* Q1 of the paper, transposed to the toy schema: departments whose
   total salary exceeds 250. *)
let q1 =
  "select did from dept where 250 < (select sum(salary) from emp where dept = did)"

let stages sql = Support.check_stages_equivalent (Lazy.force db) sql

let shape o = Pp.shape o

let rec count_shape pred (o : op) =
  (if pred o then 1 else 0)
  + List.fold_left (fun acc c -> acc + count_shape pred c) 0 (Op.children o)

let has pred o = count_shape pred o > 0

let is_apply = function Apply _ -> true | _ -> false
let is_loj = function Join { kind = LeftOuter; _ } -> true | _ -> false
let is_inner = function Join { kind = Inner; _ } -> true | _ -> false
let is_groupby = function GroupBy _ -> true | _ -> false
let is_max1row = function Max1row _ -> true | _ -> false

let test_figure5_pipeline () =
  let st = stages q1 in
  (* bound: mutual recursion, no Apply *)
  Alcotest.(check bool) "bound has subquery" true (Normalize.Classify.op_has_subquery st.bound);
  Alcotest.(check bool) "bound has no apply" false (has is_apply st.bound);
  (* applied: Figure 2 — Apply(leftouter) over customer with ScalarAgg *)
  Alcotest.(check bool) "applied has apply" true (has is_apply st.applied);
  Alcotest.(check bool) "applied has no subquery" false
    (Normalize.Classify.op_has_subquery st.applied);
  (* decorrelated: identity (9) produced GroupBy over outerjoin *)
  Alcotest.(check bool) "decorrelated apply-free" false (has is_apply st.decorrelated);
  Alcotest.(check bool) "decorrelated has groupby" true (has is_groupby st.decorrelated);
  Alcotest.(check bool) "decorrelated has leftouter" true (has is_loj st.decorrelated);
  (* oj simplification fired: 250 < X rejects NULL through the GroupBy *)
  Alcotest.(check bool) "oj simplified to inner" false (has is_loj st.oj_simplified);
  Alcotest.(check bool) "inner join present" true (has is_inner st.oj_simplified);
  Alcotest.(check string) "class 1" "class 1 (fully flattened)"
    (Normalize.Classify.to_string st.subquery_class)

let test_exists_becomes_semijoin () =
  let st = stages "select name from emp where exists (select did from dept where did = dept)" in
  Alcotest.(check bool) "no apply" false (has is_apply st.normalized);
  Alcotest.(check bool) "semijoin" true
    (has (function Join { kind = Semi; _ } -> true | _ -> false) st.normalized)

let test_not_exists_becomes_antijoin () =
  let st =
    stages "select name from emp where not exists (select did from dept where did = dept)"
  in
  Alcotest.(check bool) "no apply" false (has is_apply st.normalized);
  Alcotest.(check bool) "antijoin" true
    (has (function Join { kind = Anti; _ } -> true | _ -> false) st.normalized)

let test_in_and_quantified () =
  let st = stages "select eid from emp where dept in (select did from dept)" in
  Alcotest.(check bool) "IN flattens to semijoin" true
    (has (function Join { kind = Semi; _ } -> true | _ -> false) st.normalized);
  let st2 = stages "select eid from emp where dept not in (select did from dept)" in
  Alcotest.(check bool) "NOT IN flattens to antijoin" true
    (has (function Join { kind = Anti; _ } -> true | _ -> false) st2.normalized);
  let st3 =
    stages "select eid from emp where salary > all (select salary from emp where dept = 1)"
  in
  Alcotest.(check bool) "ALL flattens" false (has is_apply st3.normalized)

let test_uncorrelated_scalar () =
  let st = stages "select eid from emp where salary > (select avg(salary) from emp)" in
  (* identity (1)/(2): plain join, no correlation involved *)
  Alcotest.(check bool) "no apply" false (has is_apply st.normalized)

let test_class3_max1row_kept () =
  (* the paper's Q2 (Section 2.4): scalar subquery that can return more
     than one row — Max1row survives and the subquery stays correlated *)
  let cat = (Lazy.force db).Storage.Database.catalog in
  let b =
    Sqlfront.Binder.bind_sql cat
      "select dname, (select name from emp where dept = did) from dept"
  in
  let env = Catalog.props_env cat in
  let st = Normalize.run (Normalize.default_options env) b.op in
  Alcotest.(check bool) "max1row present" true (has is_max1row st.normalized);
  Alcotest.(check bool) "apply kept" true (has is_apply st.normalized);
  Alcotest.(check string) "class 3" "class 3 (exception subquery: Max1row)"
    (Normalize.Classify.to_string st.subquery_class)

let test_max1row_elided_on_key () =
  (* reversed roles (paper Section 2.4): equality on the key proves at
     most one row, Max1row is not needed and the subquery flattens *)
  let st = stages "select name, (select dname from dept where did = dept) from emp" in
  Alcotest.(check bool) "no max1row" false (has is_max1row st.normalized);
  Alcotest.(check bool) "no apply" false (has is_apply st.normalized)

let test_class2_union_kept_correlated () =
  (* the paper's UNION ALL example: removal requires duplicating the
     outer (identity (5)) — normalization keeps the Apply *)
  let cat = (Lazy.force db).Storage.Database.catalog in
  let b =
    Sqlfront.Binder.bind_sql cat
      "select eid from emp where 100 > (select sum(z) from (select salary as z from emp e2 \
       where e2.eid = emp.eid union all select did from dept where did = emp.dept) u)"
  in
  ignore b;
  Alcotest.(check pass) "binds" () ()

let test_select_split_other_conjuncts () =
  (* an existential subquery ANDed with other conditions still becomes a
     semijoin (the paper: "when such select can be created by splitting
     another") *)
  let st =
    stages
      "select name from emp where salary > 150 and exists (select did from dept where did = dept)"
  in
  Alcotest.(check bool) "semijoin" true
    (has (function Join { kind = Semi; _ } -> true | _ -> false) st.normalized);
  Alcotest.(check bool) "no apply" false (has is_apply st.normalized)

let test_exists_in_disjunction_uses_count () =
  (* in a value context (under OR) the existential cannot become a
     semijoin; it is rewritten through a scalar count aggregate *)
  let st =
    stages
      "select name from emp where salary > 350 or exists (select did from dept where did = dept and did > 1)"
  in
  (* still fully decorrelated *)
  Alcotest.(check bool) "no apply" false (has is_apply st.normalized)

let test_multiple_subqueries () =
  let st =
    stages
      "select eid from emp where salary > (select min(salary) from emp e2 where e2.dept = emp.dept) \
       and dept in (select did from dept)"
  in
  Alcotest.(check bool) "no apply" false (has is_apply st.normalized)

let test_nested_subqueries () =
  let st =
    stages
      "select eid from emp where salary >= (select max(salary) from emp e2 where e2.dept in \
       (select did from dept where dname = 'eng'))"
  in
  Alcotest.(check bool) "no apply" false (has is_apply st.normalized)

let test_oj_simplify_positive_negative () =
  let cat = (Lazy.force db).Storage.Database.catalog in
  let env = Catalog.props_env cat in
  let bind sql = (Sqlfront.Binder.bind_sql cat sql).op in
  let normalize sql = (Normalize.run (Normalize.default_options env) (bind sql)).normalized in
  (* filter above the outerjoin rejects NULL: simplified *)
  let t1 = normalize "select name from emp left join dept on dept = did where dname = 'eng'" in
  Alcotest.(check bool) "rejecting filter simplifies" false (has is_loj t1);
  (* IS NULL does not reject: outerjoin preserved *)
  let t2 = normalize "select name from emp left join dept on dept = did where dname is null" in
  Alcotest.(check bool) "is-null keeps outerjoin" true (has is_loj t2);
  (* no filter at all: preserved *)
  let t3 = normalize "select name, dname from emp left join dept on dept = did" in
  Alcotest.(check bool) "no filter keeps outerjoin" true (has is_loj t3)

let test_oj_simplify_through_groupby_blocked_by_countstar () =
  let cat = (Lazy.force db).Storage.Database.catalog in
  let env = Catalog.props_env cat in
  let bind sql = (Sqlfront.Binder.bind_sql cat sql).op in
  let normalize sql = (Normalize.run (Normalize.default_options env) (bind sql)).normalized in
  (* sum-based rejection passes through the GroupBy *)
  let t1 =
    normalize
      "select eid from (select eid, sum(did) as s from emp left join dept on dept = did group by eid) x \
       where s > 0"
  in
  Alcotest.(check bool) "sum rejection simplifies" false (has is_loj t1);
  (* a count-star in the same GroupBy blocks the derivation *)
  let t2 =
    normalize
      "select eid from (select eid, sum(did) as s, count(*) as c from emp left join dept on dept = did group by eid) x \
       where s > 0"
  in
  Alcotest.(check bool) "count-star blocks" true (has is_loj t2)

let test_semantics_preserved_by_oj_cases () =
  (* semantic ground truth for both outcomes above *)
  ignore
    (stages
       "select eid from (select eid, sum(did) as s from emp left join dept on dept = did group by eid) x where s > 0");
  ignore
    (stages
       "select eid from (select eid, sum(did) as s, count(*) as c from emp left join dept on dept = did group by eid) x where s > 0")

let test_pruning_narrows_decorrelation_keys () =
  let st = stages q1 in
  (* the GroupBy introduced by identity (9) must have been narrowed to a
     key of dept plus referenced columns, not all columns *)
  let rec find_groupby (o : op) =
    match o with
    | GroupBy { keys; _ } -> Some keys
    | _ -> List.find_map find_groupby (Op.children o)
  in
  match find_groupby st.normalized with
  | Some keys -> Alcotest.(check bool) "narrow keys" true (List.length keys <= 2)
  | None -> Alcotest.fail "no groupby"

let test_derived_tables () =
  let st =
    stages
      "select dn, total from (select dname as dn, did as d from dept) v, \
       (select dept, sum(salary) as total from emp group by dept) w where w.dept = v.d"
  in
  Alcotest.(check bool) "no apply" false (has is_apply st.normalized)

let test_decorrelate_disabled () =
  let cat = (Lazy.force db).Storage.Database.catalog in
  let env = Catalog.props_env cat in
  let b = Sqlfront.Binder.bind_sql cat q1 in
  let opts = { (Normalize.default_options env) with decorrelate = false } in
  let st = Normalize.run opts b.op in
  Alcotest.(check bool) "apply kept when disabled" true (has is_apply st.normalized);
  (* still executable, same result *)
  Support.check_same_bag "same result"
    (Support.run_op (Lazy.force db) st.normalized)
    (Support.run_op (Lazy.force db) st.bound)

let suite =
  [ Alcotest.test_case "figure 5 pipeline" `Quick test_figure5_pipeline;
    Alcotest.test_case "exists -> semijoin" `Quick test_exists_becomes_semijoin;
    Alcotest.test_case "not exists -> antijoin" `Quick test_not_exists_becomes_antijoin;
    Alcotest.test_case "in / quantified" `Quick test_in_and_quantified;
    Alcotest.test_case "uncorrelated scalar" `Quick test_uncorrelated_scalar;
    Alcotest.test_case "class 3: max1row kept" `Quick test_class3_max1row_kept;
    Alcotest.test_case "max1row elided on key" `Quick test_max1row_elided_on_key;
    Alcotest.test_case "class 2 binds" `Quick test_class2_union_kept_correlated;
    Alcotest.test_case "select splitting" `Quick test_select_split_other_conjuncts;
    Alcotest.test_case "exists under OR via count" `Quick test_exists_in_disjunction_uses_count;
    Alcotest.test_case "multiple subqueries" `Quick test_multiple_subqueries;
    Alcotest.test_case "nested subqueries" `Quick test_nested_subqueries;
    Alcotest.test_case "oj simplify pos/neg" `Quick test_oj_simplify_positive_negative;
    Alcotest.test_case "oj through groupby / countstar" `Quick
      test_oj_simplify_through_groupby_blocked_by_countstar;
    Alcotest.test_case "oj cases semantics" `Quick test_semantics_preserved_by_oj_cases;
    Alcotest.test_case "pruning narrows keys" `Quick test_pruning_narrows_decorrelation_keys;
    Alcotest.test_case "derived tables" `Quick test_derived_tables;
    Alcotest.test_case "decorrelate off" `Quick test_decorrelate_disabled
  ]
