(* End-to-end engine tests, including the paper's syntax-independence
   claim: the four equivalent formulations of the motivating query
   produce the same plan and the same rows under full optimization. *)


let db = lazy (Support.toy_db ())

(* the four formulations of Section 1.1, on the toy schema *)
let formulation_subquery =
  "select did from dept where 250 < (select sum(salary) from emp where dept = did)"

let formulation_outerjoin_agg =
  "select did from dept left outer join emp on dept = did \
   group by did having 250 < sum(salary)"

let formulation_join_agg =
  "select did from dept join emp on dept = did group by did having 250 < sum(salary)"

let formulation_derived =
  "select did from dept, (select dept as d2, sum(salary) as total from emp group by dept) a \
   where a.d2 = did and 250 < total"

let all_formulations =
  [ formulation_subquery; formulation_outerjoin_agg; formulation_join_agg; formulation_derived ]

let test_syntax_independence_results () =
  let dbv = Lazy.force db in
  let results = List.map (fun sql -> Support.bag (Support.run_sql dbv sql)) all_formulations in
  match results with
  | first :: rest ->
      List.iteri
        (fun i r -> Alcotest.(check (list string)) (Printf.sprintf "formulation %d" (i + 2)) first r)
        rest
  | [] -> ()

let test_syntax_independence_plans () =
  (* The subquery, outerjoin+aggregate and join+aggregate formulations
     converge on the identical plan.  Kim's derived-table formulation
     reaches the same strategy lattice; its grouping column is a
     different (equivalent) column, so we assert cost equivalence
     rather than tree identity. *)
  let dbv = Lazy.force db in
  let eng = Engine.create dbv in
  let prepared = List.map (Engine.prepare eng) all_formulations in
  let plans = List.map (fun p -> Optimizer.Search.canonical p.Engine.plan) prepared in
  (match plans with
  | p1 :: p2 :: p3 :: _ ->
      Alcotest.(check string) "formulation 2 plan" p1 p2;
      Alcotest.(check string) "formulation 3 plan" p1 p3
  | _ -> Alcotest.fail "expected four plans");
  match prepared with
  | first :: rest ->
      List.iteri
        (fun i p ->
          let ratio = p.Engine.plan_cost /. first.Engine.plan_cost in
          Alcotest.(check bool)
            (Printf.sprintf "formulation %d cost within 30%% (ratio %.2f)" (i + 2) ratio)
            true
            (ratio < 1.3 && ratio > 0.7))
        rest
  | [] -> ()

let test_explain_is_informative () =
  let eng = Engine.create (Lazy.force db) in
  let s = Engine.explain eng formulation_subquery in
  Alcotest.(check bool) "mentions class" true (Support.contains s "class 1")

let test_explain_stages () =
  let eng = Engine.create (Lazy.force db) in
  let s = Engine.explain_stages eng formulation_subquery in
  List.iter
    (fun fragment -> Alcotest.(check bool) fragment true (Support.contains s fragment))
    [ "bound (mutual recursion)"; "apply introduced"; "decorrelated"; "chosen plan" ]

let test_tpch_queries_all_configs () =
  let dbv = Datagen.Tpch_gen.database ~sf:0.002 () in
  let eng = Engine.create dbv in
  let queries =
    [ "select o_orderdate, sum(o_totalprice) as t from orders group by o_orderdate order by o_orderdate limit 5";
      "select c_custkey from customer where 1000 < (select sum(o_totalprice) from orders where o_custkey = c_custkey) order by c_custkey";
      "select n_name, count(*) as c from supplier, nation where s_nationkey = n_nationkey group by n_name order by n_name";
      "select p_partkey from part where exists (select ps_partkey from partsupp where ps_partkey = p_partkey and ps_availqty > 5000) order by p_partkey limit 10"
    ]
  in
  List.iter
    (fun sql ->
      let base = Support.bag (Support.run_sql ~config:Optimizer.Config.correlated_only dbv sql) in
      let decorr = Support.bag (Support.run_sql ~config:Optimizer.Config.decorrelated_only dbv sql) in
      let full = Support.bag (Support.run_sql ~config:Optimizer.Config.full dbv sql) in
      Alcotest.(check (list string)) ("decorr: " ^ sql) base decorr;
      Alcotest.(check (list string)) ("full: " ^ sql) base full)
    queries;
  ignore eng

let test_result_formatting () =
  let eng = Engine.create (Lazy.force db) in
  let r = Engine.query eng "select name, salary from emp where eid = 1" in
  let s = Engine.format_result r in
  Alcotest.(check bool) "header" true (Support.contains s "name");
  Alcotest.(check bool) "row count" true (Support.contains s "(1 rows)")

let suite =
  [ Alcotest.test_case "syntax independence: results" `Quick test_syntax_independence_results;
    Alcotest.test_case "syntax independence: plans" `Quick test_syntax_independence_plans;
    Alcotest.test_case "explain" `Quick test_explain_is_informative;
    Alcotest.test_case "explain stages" `Quick test_explain_stages;
    Alcotest.test_case "tpch across configs" `Slow test_tpch_queries_all_configs;
    Alcotest.test_case "result formatting" `Quick test_result_formatting
  ]
