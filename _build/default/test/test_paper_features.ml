(* Tests for the paper's corner features: conditional scalar execution
   of exception subqueries inside CASE (Section 2.4), SegmentApply over
   semijoins/antijoins (Section 3.4.1), and the subquery classification
   of residual expression subqueries. *)

open Relalg
open Relalg.Algebra

let db = lazy (Support.toy_db ())

let cat () = (Lazy.force db).Storage.Database.catalog
let env () = Catalog.props_env (cat ())

(* --- conditional CASE protects Max1row branches ----------------------- *)

let test_case_guards_exception_subquery () =
  (* the subquery returns two rows for dept 1; the CASE condition
     excludes dept 1, so lazy evaluation must not raise *)
  let sql =
    "select did, case when did = 1 then 0 \
     else (select eid from emp where dept = did) end from dept"
  in
  let rows = Support.run_sql (Lazy.force db) sql in
  Alcotest.(check int) "three rows, no error" 3 (List.length rows);
  (* classification recognizes the kept subquery as Class 3 *)
  let b = Sqlfront.Binder.bind_sql (cat ()) sql in
  let st = Normalize.run (Normalize.default_options (env ())) b.op in
  Alcotest.(check string) "class 3" "class 3 (exception subquery: Max1row)"
    (Normalize.Classify.to_string st.subquery_class)

let test_case_eager_when_safe () =
  (* a single-row-provable subquery inside CASE is extracted eagerly and
     the query flattens *)
  let sql =
    "select eid, case when dept < 50 then (select dname from dept where did = dept) \
     else 'none' end from emp"
  in
  let b = Sqlfront.Binder.bind_sql (cat ()) sql in
  let st = Normalize.run (Normalize.default_options (env ())) b.op in
  Alcotest.(check bool) "flattens" false
    (Op.exists_op (function Apply _ -> true | _ -> false) st.normalized
    && Normalize.Classify.op_has_subquery st.normalized);
  let rows = Support.bag (Support.run_sql (Lazy.force db) sql) in
  Alcotest.(check (list string)) "values"
    (List.sort compare [ "1|eng"; "2|eng"; "3|ops"; "4|none" ])
    rows

let test_case_error_still_raised_when_hit () =
  (* when the guarded branch IS taken for an offending row, the error
     must still surface *)
  let sql =
    "select did, case when did < 50 then (select eid from emp where dept = did) \
     else 0 end from dept"
  in
  Alcotest.check_raises "error surfaces"
    (Exec.Executor.Runtime_error "scalar subquery returned more than one row")
    (fun () -> ignore (Support.run_sql (Lazy.force db) sql))

(* --- SegmentApply over semijoin / antijoin ----------------------------- *)

let fresh_scan table =
  let def = Option.get (Catalog.find_table (cat ()) table) in
  let cols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty) def.columns in
  (TableScan { table; cols }, cols)

let self_semi kind =
  (* emp ⋉/▷ (avg salary per dept) on same dept, salary < avg *)
  let e1, c1 = fresh_scan "emp" in
  let e2, c2 = fresh_scan "emp" in
  let d1 = List.nth c1 2 and d2 = List.nth c2 2 and s2 = List.nth c2 3 in
  let av = { fn = Avg (ColRef s2); out = Col.fresh "av" Value.TFloat } in
  let g = GroupBy { keys = [ d2 ]; aggs = [ av ]; input = e2 } in
  let sal1 = List.nth c1 3 in
  Join
    { kind;
      pred = And (Cmp (Eq, ColRef d1, ColRef d2), Cmp (Lt, ColRef sal1, ColRef av.out));
      left = e1;
      right = g
    }

let check_equiv msg a b =
  Support.check_same_bag msg (Support.run_op (Lazy.force db) a)
    (Support.run_op (Lazy.force db) b)

let test_segment_apply_semijoin () =
  let j = self_semi Semi in
  match Rules.Segment_apply.introduce j with
  | None -> Alcotest.fail "semijoin SegmentApply should fire"
  | Some sa ->
      check_equiv "semijoin segment equivalent" j sa;
      Alcotest.(check bool) "has segment apply" true
        (Op.exists_op (function SegmentApply _ -> true | _ -> false) sa)

let test_segment_apply_antijoin () =
  let j = self_semi Anti in
  match Rules.Segment_apply.introduce j with
  | None -> Alcotest.fail "antijoin SegmentApply should fire"
  | Some sa -> check_equiv "antijoin segment equivalent" j sa

let test_segment_apply_outerjoin () =
  let j = self_semi LeftOuter in
  match Rules.Segment_apply.introduce j with
  | None -> Alcotest.fail "outerjoin SegmentApply should fire"
  | Some sa -> check_equiv "outerjoin segment equivalent" j sa

(* existential SQL end to end: semijoin form of the Q17 pattern *)
let test_exists_segment_end_to_end () =
  let dbv = Datagen.Tpch_gen.database ~sf:0.005 () in
  let sql =
    "select l_orderkey, l_linenumber from lineitem where exists \
     (select l2.l_partkey from lineitem l2 where l2.l_partkey = lineitem.l_partkey \
      and l2.l_quantity > lineitem.l_quantity) order by l_orderkey, l_linenumber"
  in
  let r_corr = Support.bag (Support.run_sql ~config:Optimizer.Config.correlated_only dbv sql) in
  let r_full = Support.bag (Support.run_sql ~config:Optimizer.Config.full dbv sql) in
  Alcotest.(check (list string)) "existential self-join agrees" r_corr r_full

(* --- date handling through the whole stack ------------------------------ *)

let test_dates_end_to_end () =
  let dbv = Datagen.Tpch_gen.database ~sf:0.002 () in
  let r =
    Support.run_sql dbv
      "select count(*) from orders where o_orderdate >= date '1992-01-01' \
       and o_orderdate < date '2000-01-01'"
  in
  (match r with
  | [ [| Value.Int n |] ] ->
      Alcotest.(check int) "all orders in range" n
        (Storage.Table.row_count (Storage.Database.table dbv "orders"))
  | _ -> Alcotest.fail "unexpected result");
  let r2 =
    Support.run_sql dbv
      "select count(*) from orders where o_orderdate between date '1993-01-01' and date '1994-12-31'"
  in
  match r2 with
  | [ [| Value.Int n |] ] -> Alcotest.(check bool) "some orders in window" true (n > 0)
  | _ -> Alcotest.fail "unexpected result"

let suite =
  [ Alcotest.test_case "CASE guards exception subquery" `Quick test_case_guards_exception_subquery;
    Alcotest.test_case "CASE eager when safe" `Quick test_case_eager_when_safe;
    Alcotest.test_case "CASE error still raised when hit" `Quick
      test_case_error_still_raised_when_hit;
    Alcotest.test_case "segment apply: semijoin" `Quick test_segment_apply_semijoin;
    Alcotest.test_case "segment apply: antijoin" `Quick test_segment_apply_antijoin;
    Alcotest.test_case "segment apply: outerjoin" `Quick test_segment_apply_outerjoin;
    Alcotest.test_case "existential segment end-to-end" `Quick test_exists_segment_end_to_end;
    Alcotest.test_case "dates end-to-end" `Quick test_dates_end_to_end
  ]
