(* Property-based tests.

   The cross-cutting invariant (DESIGN.md): for randomly generated
   databases and randomly generated correlated queries, every pipeline
   stage and every optimizer configuration computes the same bag of
   rows.  The query generator produces SQL over the toy schema covering
   scalar/EXISTS/IN/quantified subqueries, grouping, outerjoins and
   arithmetic. *)

open QCheck

(* --- random toy databases --- *)

let gen_db : Storage.Database.t Gen.t =
 fun st ->
  let open Relalg.Value in
  let cat = Support.toy_catalog () in
  let db = Storage.Database.create cat in
  let n_emp = Gen.int_range 0 12 st in
  let n_dept = Gen.int_range 0 5 st in
  let emp_rows =
    List.init n_emp (fun i ->
        [| Int (i + 1);
           Str (Printf.sprintf "e%d" (Gen.int_range 0 5 st));
           Int (Gen.int_range 1 6 st);
           Float (float_of_int (Gen.int_range 0 50 st) *. 10.)
        |])
  in
  let dept_rows =
    List.init n_dept (fun i ->
        [| Int (i + 1); Str (Printf.sprintf "d%d" (Gen.int_range 0 3 st)) |])
  in
  Storage.Table.load (Storage.Database.table db "emp") emp_rows;
  Storage.Table.load (Storage.Database.table db "dept") dept_rows;
  Storage.Database.build_declared_indexes db;
  db

(* --- random queries --- *)

(* all correlations reference emp's columns (the outer side in every
   template); inner tables are dept or a self-joined emp alias *)
let gen_scalar_subquery st =
  let agg = Gen.oneofl [ "sum"; "min"; "max"; "count"; "avg" ] st in
  let corr = Gen.oneofl [ "did = dept"; "did < eid"; "dname <> name" ] st in
  Printf.sprintf "(select %s(did) from dept where %s)" agg corr

let gen_predicate st =
  match Gen.int_range 0 6 st with
  | 0 -> "salary > 200"
  | 1 -> Printf.sprintf "2 < %s" (gen_scalar_subquery st)
  | 2 -> "exists (select did from dept where did = dept)"
  | 3 -> "not exists (select did from dept where did = dept and dname < name)"
  | 4 -> "dept in (select did from dept)"
  | 5 -> "salary >= all (select e2.salary from emp e2 where e2.dept = emp.dept)"
  | _ -> Printf.sprintf "salary < any (select e3.salary from emp e3 where e3.eid <> emp.eid)"

let gen_query : string Gen.t =
 fun st ->
  match Gen.int_range 0 3 st with
  | 0 -> Printf.sprintf "select eid, name from emp where %s" (gen_predicate st)
  | 1 ->
      Printf.sprintf
        "select dept, sum(salary), count(*) from emp where %s group by dept"
        (gen_predicate st)
  | 2 ->
      Printf.sprintf
        "select name, (select dname from dept where did = dept) from emp where %s"
        (gen_predicate st)
  | _ ->
      Printf.sprintf
        "select name, dname from emp left join dept on dept = did where %s"
        (gen_predicate st)

let arb_case = make (Gen.pair gen_db gen_query)

(* compare full-stack execution across configurations *)
let prop_configs_agree =
  Test.make ~name:"all optimizer configs compute the same bag" ~count:120 arb_case
    (fun (db, sql) ->
      let r_corr = Support.bag (Support.run_sql ~config:Optimizer.Config.correlated_only db sql) in
      let r_decorr = Support.bag (Support.run_sql ~config:Optimizer.Config.decorrelated_only db sql) in
      let r_full = Support.bag (Support.run_sql ~config:Optimizer.Config.full db sql) in
      r_corr = r_decorr && r_decorr = r_full)

(* compare the normalization stages pairwise *)
let prop_stages_agree =
  Test.make ~name:"normalization stages compute the same bag" ~count:120 arb_case
    (fun (db, sql) ->
      try
        ignore (Support.check_stages_equivalent db sql);
        true
      with Alcotest.Test_error -> false)

(* class-2 identities, when enabled, must also preserve semantics *)
let prop_class2_agrees =
  Test.make ~name:"class-2 unnesting preserves semantics" ~count:60 arb_case
    (fun (db, sql) ->
      let cat = db.Storage.Database.catalog in
      let env = Catalog.props_env cat in
      let b = Sqlfront.Binder.bind_sql cat sql in
      let base = Normalize.run (Normalize.default_options env) b.op in
      let cls2 = Normalize.run { (Normalize.default_options env) with class2 = true } b.op in
      Support.bag (Support.run_op db base.normalized)
      = Support.bag (Support.run_op db cls2.normalized))

(* the optimizer's exploration never changes results, regardless of the
   rule subset enabled *)
let prop_rule_subsets_agree =
  Test.make ~name:"random rule subsets compute the same bag" ~count:60
    (make (Gen.triple gen_db gen_query (Gen.pair Gen.bool (Gen.pair Gen.bool Gen.bool))))
    (fun (db, sql, (g, (l, s))) ->
      let cfg =
        { Optimizer.Config.full with
          groupby_reorder = g;
          local_agg = l;
          segment_apply = s;
          max_alternatives = 120;
          max_rounds = 3
        }
      in
      Support.bag (Support.run_sql ~config:cfg db sql)
      = Support.bag (Support.run_sql ~config:Optimizer.Config.correlated_only db sql))

let suite =
  [ Support.qtest prop_configs_agree;
    Support.qtest prop_stages_agree;
    Support.qtest prop_class2_agrees;
    Support.qtest prop_rule_subsets_agree
  ]
