(* Execution engine tests: operator semantics including NULL handling,
   join variants, aggregation, bag operators, Apply, SegmentApply. *)

open Relalg
open Relalg.Algebra

let db = lazy (Support.toy_db ())

let run o = Support.run_op (Lazy.force db) o

let sql ?config s = Support.run_sql ?config (Lazy.force db) s

let strings rows = Support.bag rows

let check_rows msg expected o =
  Alcotest.(check (list string)) msg (List.sort compare expected) (strings (run o))

let check_sql msg expected s =
  Alcotest.(check (list string)) msg (List.sort compare expected) (strings (sql s))

let test_scan_select_project () =
  check_sql "filter" [ "3"; "4" ] "select eid from emp where salary > 250";
  check_sql "project expr" [ "150.0"; "250.0"; "350.0"; "450.0" ]
    "select salary + 50 from emp";
  check_sql "string compare" [ "ann" ] "select name from emp where name < 'b'"

let test_three_valued_logic () =
  (* NULL comparisons never satisfy a filter *)
  check_sql "null cmp filtered" [] "select eid from emp where null > 0";
  check_sql "null = null filtered" [] "select eid from emp where null = null";
  check_sql "is null" [ "4" ] "select eid from emp where null is null and eid = 4";
  (* OR with one true side wins despite NULL *)
  check_sql "null or true" [ "1" ] "select eid from emp where eid = 1 and (null > 0 or true)";
  (* AND with false short-circuits NULL *)
  check_sql "null and false" [] "select eid from emp where null > 0 and false";
  (* CASE: unknown condition falls through *)
  check_sql "case unknown" [ "0" ]
    "select case when null > 0 then 1 else 0 end from emp where eid = 1"

let test_join_kinds () =
  check_sql "inner join" [ "ann|eng"; "bob|eng"; "cid|ops" ]
    "select name, dname from emp, dept where dept = did";
  check_sql "left outer join" [ "ann|eng"; "bob|eng"; "cid|ops"; "dan|NULL" ]
    "select name, dname from emp left join dept on dept = did";
  check_sql "explicit inner join" [ "ann|eng"; "bob|eng"; "cid|ops" ]
    "select name, dname from emp join dept on dept = did";
  (* semijoin via EXISTS, antijoin via NOT EXISTS *)
  check_sql "exists" [ "ann"; "bob"; "cid" ]
    "select name from emp where exists (select did from dept where did = dept)";
  check_sql "not exists" [ "dan" ]
    "select name from emp where not exists (select did from dept where did = dept)";
  (* dept with no emp *)
  check_sql "anti other way" [ "hr" ]
    "select dname from dept where not exists (select eid from emp where dept = did)"

let test_nlj_vs_hash_agree () =
  (* a non-equi join must give the same result as the equi formulation
     plus filtering *)
  check_sql "non-equi join" [ "ann|1"; "bob|1"; "cid|1"; "cid|2" ]
    "select name, did from emp, dept where did <= dept and did < 3 and dept < 50"

let test_null_join_keys () =
  (* NULL keys never match in joins: build a row with NULL via outerjoin
     then join on the padded column *)
  let r =
    sql
      "select e.name, d2.dname from (select name, dname as dn from emp left join dept on dept = did) e \
       left join dept d2 on e.dn = d2.dname, dept d2b where d2b.did = 1"
  in
  ignore r;
  (* dan's dn is NULL: must not match any dept *)
  check_sql "null key no match" [ "NULL" ]
    "select dn from (select name, dname as dn from emp left join dept on dept = did) x where dn is null"

let test_aggregation () =
  check_sql "vector agg" [ "1|300.0"; "2|300.0"; "99|400.0" ]
    "select dept, sum(salary) from emp group by dept";
  check_sql "count star" [ "4" ] "select count(*) from emp";
  check_sql "scalar agg empty input sum" [ "NULL" ] "select sum(salary) from emp where eid > 100";
  check_sql "scalar agg empty input count" [ "0" ] "select count(*) from emp where eid > 100";
  check_sql "vector agg empty input" [] "select dept, sum(salary) from emp where eid > 100 group by dept";
  check_sql "avg" [ "250.0" ] "select avg(salary) from emp";
  check_sql "min max" [ "100.0|400.0" ] "select min(salary), max(salary) from emp";
  check_sql "having" [ "1" ] "select dept from emp group by dept having count(*) > 1";
  (* count skips nulls *)
  check_sql "count of nullable col" [ "3" ]
    "select count(dname) from (select name, dname from emp left join dept on dept = did) x"

let test_distinct_union_except () =
  check_sql "distinct" [ "1"; "2" ] "select distinct x from bag";
  (* bag semantics preserved without distinct *)
  check_sql "bag dup kept" [ "1"; "1"; "2" ] "select x from bag";
  (* Except is bag difference: test via algebra directly *)
  let c1 = Col.fresh "x" Value.TInt in
  let t1 = ConstTable { cols = [ c1 ]; rows = [ [| Value.Int 1 |]; [| Value.Int 1 |]; [| Value.Int 2 |] ] } in
  let c2 = Col.fresh "x" Value.TInt in
  let t2 = ConstTable { cols = [ c2 ]; rows = [ [| Value.Int 1 |] ] } in
  check_rows "except all" [ "1"; "2" ] (Except (t1, t2));
  check_rows "union all" [ "1"; "1"; "1"; "2" ] (UnionAll (t1, t2))

let test_order_limit () =
  let r = sql "select name from emp order by salary desc limit 2" in
  Alcotest.(check (list string)) "order desc limit"
    [ "dan"; "cid" ]
    (List.map (fun row -> Value.to_string row.(0)) r);
  let r2 = sql "select name from emp order by dept, salary desc" in
  Alcotest.(check (list string)) "two keys"
    [ "bob"; "ann"; "cid"; "dan" ]
    (List.map (fun row -> Value.to_string row.(0)) r2)

let test_max1row () =
  (* scalar subquery with multiple rows raises *)
  Alcotest.check_raises "max1row error"
    (Exec.Executor.Runtime_error "subquery returned more than one row (Max1row)")
    (fun () -> ignore (sql "select (select eid from emp where dept = 1) from dept where did = 1"));
  (* exactly one row is fine, zero rows gives NULL *)
  check_sql "scalar sub one row" [ "cid" ]
    "select (select name from emp where dept = 2) from dept where did = 2";
  check_sql "scalar sub empty gives null" [ "NULL" ]
    "select (select name from emp where dept = 3) from dept where did = 3"

let test_apply_correlated () =
  check_sql "correlated scalar agg" [ "eng|300.0"; "hr|NULL"; "ops|300.0" ]
    "select dname, (select sum(salary) from emp where dept = did) from dept";
  (* quantified comparisons *)
  check_sql "any" [ "2"; "3"; "4" ]
    "select eid from emp where salary > any (select salary from emp where dept = 1)";
  check_sql "all" [ "4" ]
    "select eid from emp where salary > all (select salary from emp where dept <= 2)";
  check_sql "in subquery" [ "1"; "2"; "3" ]
    "select eid from emp where dept in (select did from dept)";
  check_sql "not in" [ "4" ] "select eid from emp where dept not in (select did from dept)";
  (* NOT IN with NULLs in the subquery result: nothing qualifies *)
  check_sql "not in with nulls" []
    "select eid from emp where dept not in (select case when did = 3 then null else did end from dept)"

let test_segment_apply_exec () =
  (* per-dept segments: join each employee with the count of its segment *)
  let e = Col.fresh "eid" Value.TInt and d = Col.fresh "dept" Value.TInt in
  let scan = Project
      ( [ { expr = ColRef e; out = e }; { expr = ColRef d; out = d } ],
        TableScan
          { table = "emp";
            cols = [ e; Col.fresh "name" Value.TStr; d; Col.fresh "salary" Value.TFloat ]
          } )
  in
  (* recreate properly: scan emp with its 4 cols, project eid/dept *)
  let scan =
    match scan with
    | Project (_, TableScan { cols; _ }) ->
        let e0 = List.nth cols 0 and d0 = List.nth cols 2 in
        Project
          ( [ { expr = ColRef e0; out = e0 }; { expr = ColRef d0; out = d0 } ],
            TableScan { table = "emp"; cols } )
    | _ -> assert false
  in
  let out_cols = Op.schema scan in
  let e0 = List.nth out_cols 0 and d0 = List.nth out_cols 1 in
  let h1 = List.map Col.clone out_cols in
  let hole = SegmentHole { cols = h1; src = out_cols } in
  let cnt = { fn = CountStar; out = Col.fresh "cnt" Value.TInt } in
  let inner = ScalarAgg { aggs = [ cnt ]; input = hole } in
  let sa = SegmentApply { seg_cols = [ d0 ]; outer = scan; inner } in
  let projs =
    [ { expr = ColRef d0; out = d0 }; { expr = ColRef cnt.out; out = cnt.out } ]
  in
  ignore e0;
  check_rows "segment counts" [ "1|2"; "2|1"; "99|1" ] (Project (projs, sa))

let test_index_probe_path () =
  (* the fast path must agree with plain nested loops *)
  let dbv = Lazy.force db in
  let cat = dbv.Storage.Database.catalog in
  let b = Sqlfront.Binder.bind_sql cat
      "select dname, (select sum(salary) from emp where dept = did) from dept"
  in
  (* bound tree executes via mutual recursion; Apply tree uses the
     indexed path on emp.dept — both must agree *)
  let env = Catalog.props_env cat in
  let applied = Normalize.Apply_intro.transform env b.op in
  Support.check_same_bag "probe = naive" (Support.run_op dbv b.op) (Support.run_op dbv applied)

let test_rownum () =
  let c = Col.fresh "x" Value.TInt in
  let t = ConstTable { cols = [ c ]; rows = [ [| Value.Int 7 |]; [| Value.Int 9 |] ] } in
  let rn = Col.fresh "rn" Value.TInt in
  check_rows "rownum" [ "7|1"; "9|2" ] (Rownum { out = rn; input = t })

let test_like () =
  check_sql "prefix" [ "ann" ] "select name from emp where name like 'a%'";
  check_sql "underscore" [ "dan" ] "select name from emp where name like '_an%'";
  check_sql "contains" [ "ann"; "dan" ] "select name from emp where name like '%an%'";
  check_sql "not like" [ "bob"; "cid" ] "select name from emp where name not like '%an%'";
  Alcotest.(check bool) "like engine" true (Exec.Like.matches ~pattern:"%BRASS" "PROMO BRASS");
  Alcotest.(check bool) "like anchor" false (Exec.Like.matches ~pattern:"%BRASS" "BRASSY")

let suite =
  [ Alcotest.test_case "scan/select/project" `Quick test_scan_select_project;
    Alcotest.test_case "three-valued logic" `Quick test_three_valued_logic;
    Alcotest.test_case "join kinds" `Quick test_join_kinds;
    Alcotest.test_case "non-equi joins" `Quick test_nlj_vs_hash_agree;
    Alcotest.test_case "null join keys" `Quick test_null_join_keys;
    Alcotest.test_case "aggregation" `Quick test_aggregation;
    Alcotest.test_case "distinct/union/except" `Quick test_distinct_union_except;
    Alcotest.test_case "order by / limit" `Quick test_order_limit;
    Alcotest.test_case "max1row" `Quick test_max1row;
    Alcotest.test_case "correlated apply" `Quick test_apply_correlated;
    Alcotest.test_case "segment apply" `Quick test_segment_apply_exec;
    Alcotest.test_case "index probe path" `Quick test_index_probe_path;
    Alcotest.test_case "rownum" `Quick test_rownum;
    Alcotest.test_case "like" `Quick test_like
  ]
