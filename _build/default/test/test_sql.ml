(* Lexer, parser and binder tests. *)

open Sqlfront

let lex s = Lexer.tokenize s

let test_lexer_basics () =
  (match lex "select a, b from t where x <= 'it''s' -- comment\n and y <> 3.5" with
  | Token.KEYWORD "SELECT" :: Token.IDENT "a" :: Token.COMMA :: Token.IDENT "b"
    :: Token.KEYWORD "FROM" :: Token.IDENT "t" :: Token.KEYWORD "WHERE" :: Token.IDENT "x"
    :: Token.LE :: Token.STRING "it's" :: Token.KEYWORD "AND" :: Token.IDENT "y" :: Token.NE
    :: Token.FLOAT 3.5 :: Token.EOF :: [] ->
      ()
  | toks ->
      Alcotest.failf "unexpected tokens: %s"
        (String.concat " " (List.map Token.to_string toks)));
  Alcotest.(check bool) "lex error" true
    (try ignore (lex "select @"); false with Lexer.Lex_error _ -> true)

let test_parser_shapes () =
  let q = Parser.parse "select a, sum(b) as s from t where a > 1 group by a having sum(b) > 2 order by s desc limit 3" in
  Alcotest.(check int) "two select items" 2 (List.length q.select);
  Alcotest.(check bool) "where present" true (q.where <> None);
  Alcotest.(check int) "one group col" 1 (List.length q.group_by);
  Alcotest.(check bool) "having present" true (q.having <> None);
  Alcotest.(check bool) "order desc" true (match q.order_by with [ (_, true) ] -> true | _ -> false);
  Alcotest.(check (option int)) "limit" (Some 3) q.limit

let test_parser_precedence () =
  (* a + b * c parses as a + (b * c) *)
  (match Parser.parse_expr_string "a + b * c" with
  | Ast.EArith (Relalg.Algebra.Add, Ast.ECol (None, "a"), Ast.EArith (Relalg.Algebra.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "mul binds tighter than add");
  (* NOT a = b parses NOT over the comparison *)
  (match Parser.parse_expr_string "not a = b" with
  | Ast.ENot (Ast.ECmp _) -> ()
  | _ -> Alcotest.fail "not over comparison");
  (* x in (1,2) and y like 'a%' *)
  (match Parser.parse_expr_string "x in (1, 2) and y like 'a%'" with
  | Ast.EAnd (Ast.EInList (false, _, [ _; _ ]), Ast.ELike (false, _, "a%")) -> ()
  | _ -> Alcotest.fail "in-list / like")

let test_parser_subqueries () =
  let q =
    Parser.parse
      "select a from t where exists (select 1 from u) and b = any (select c from v) and d < (select max(e) from w)"
  in
  match q.where with
  | Some (Ast.EAnd (Ast.EExists _, Ast.EAnd (Ast.EQuant (Relalg.Algebra.Eq, Relalg.Algebra.Any, _, _), Ast.ECmp (Relalg.Algebra.Lt, _, Ast.EScalarSub _)))) ->
      ()
  | _ -> Alcotest.fail "subquery forms"

let test_parser_joins () =
  let q = Parser.parse "select * from a left outer join b on a.x = b.y join c on c.z = a.x" in
  match q.from with
  | [ Ast.TJoin (Ast.TJoin (Ast.TTable ("a", None), Ast.JLeft, Ast.TTable ("b", None), _), Ast.JInner, Ast.TTable ("c", None), _) ] ->
      ()
  | _ -> Alcotest.fail "join tree shape"

let test_parser_errors () =
  let fails s = try ignore (Parser.parse s); false with Parser.Parse_error _ -> true in
  Alcotest.(check bool) "missing from table" true (fails "select a from");
  Alcotest.(check bool) "trailing garbage" true (fails "select a from t )");
  Alcotest.(check bool) "star in sum" true (fails "select sum(*) from t");
  Alcotest.(check bool) "like needs literal" true (fails "select a from t where a like b")

(* ---- binder ---- *)

let bind sql = Binder.bind_sql (Support.toy_catalog ()) sql

let test_binder_resolution () =
  let b = bind "select name from emp where salary > 100" in
  Alcotest.(check int) "one output" 1 (List.length b.outputs);
  Alcotest.(check string) "output name" "name" (fst (List.hd b.outputs));
  (* qualified and aliased *)
  let b2 = bind "select e.name from emp e, dept d where e.dept = d.did" in
  Alcotest.(check int) "one output" 1 (List.length b2.outputs);
  (* self join gets distinct column ids *)
  let b3 = bind "select a.eid, b.eid from emp a, emp b" in
  (match b3.outputs with
  | [ (_, c1); (_, c2) ] -> Alcotest.(check bool) "distinct ids" true (c1.Relalg.Col.id <> c2.Relalg.Col.id)
  | _ -> Alcotest.fail "two outputs")

let test_binder_errors () =
  let fails sql = try ignore (bind sql); false with Binder.Bind_error _ -> true in
  Alcotest.(check bool) "unknown table" true (fails "select a from nope");
  Alcotest.(check bool) "unknown column" true (fails "select nope from emp");
  Alcotest.(check bool) "ambiguous" true (fails "select eid from emp a, emp b");
  Alcotest.(check bool) "non-grouped column" true
    (fails "select name, sum(salary) from emp group by dept");
  Alcotest.(check bool) "aggregate in where" true
    (fails "select eid from emp where sum(salary) > 1");
  Alcotest.(check bool) "multi-col scalar subquery" true
    (fails "select eid from emp where eid = (select did, dname from dept)")

let test_binder_correlation () =
  (* inner reference to outer alias produces a free column *)
  let b = bind "select eid from emp e where salary > (select did from dept where dname = e.name)" in
  let has_sub = Normalize.Classify.op_has_subquery b.op in
  Alcotest.(check bool) "subquery recorded" true has_sub

let test_binder_distinct_becomes_groupby () =
  let b = bind "select distinct dept from emp" in
  let rec has_groupby (o : Relalg.Algebra.op) =
    match o with
    | Relalg.Algebra.GroupBy { aggs = []; _ } -> true
    | _ -> List.exists has_groupby (Relalg.Op.children o)
  in
  Alcotest.(check bool) "distinct normalized to GroupBy" true (has_groupby b.op)

let test_binder_scalar_vs_vector_agg () =
  let scalar = bind "select sum(salary) from emp" in
  let vector = bind "select dept, sum(salary) from emp group by dept" in
  let rec find f (o : Relalg.Algebra.op) = f o || List.exists (find f) (Relalg.Op.children o) in
  Alcotest.(check bool) "scalar agg op" true
    (find (function Relalg.Algebra.ScalarAgg _ -> true | _ -> false) scalar.op);
  Alcotest.(check bool) "vector agg op" true
    (find (function Relalg.Algebra.GroupBy { keys = [ _ ]; _ } -> true | _ -> false) vector.op)

let test_binder_not_pushdown () =
  (* NOT IN becomes <> ALL at bind time (3VL-sound pushdown) *)
  let b = bind "select eid from emp where dept not in (select did from dept)" in
  let find_quant (e : Relalg.Algebra.expr) =
    match e with
    | Relalg.Algebra.QuantCmp (Relalg.Algebra.Ne, Relalg.Algebra.All, _, _) -> true
    | _ -> false
  in
  let rec scan_op (o : Relalg.Algebra.op) =
    List.exists
      (fun e -> List.exists find_quant (Relalg.Algebra.conjuncts e))
      (Relalg.Op.local_exprs o)
    || List.exists scan_op (Relalg.Op.children o)
  in
  Alcotest.(check bool) "not-in is <>all" true (scan_op b.op)

let suite =
  [ Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "parser shapes" `Quick test_parser_shapes;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser subqueries" `Quick test_parser_subqueries;
    Alcotest.test_case "parser joins" `Quick test_parser_joins;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "binder resolution" `Quick test_binder_resolution;
    Alcotest.test_case "binder errors" `Quick test_binder_errors;
    Alcotest.test_case "binder correlation" `Quick test_binder_correlation;
    Alcotest.test_case "distinct becomes groupby" `Quick test_binder_distinct_becomes_groupby;
    Alcotest.test_case "scalar vs vector aggregate" `Quick test_binder_scalar_vs_vector_agg;
    Alcotest.test_case "NOT pushdown at bind" `Quick test_binder_not_pushdown
  ]
