(* Optimizer tests: canonicalization, cardinality estimation, cost
   ordering, config gating, and end-to-end plan choice. *)

open Relalg
open Relalg.Algebra

let tpch = lazy (Datagen.Tpch_gen.database ~sf:0.002 ())

let test_canonical_id_insensitive () =
  let mk () =
    let a = Col.fresh "a" Value.TInt in
    Select (Cmp (Gt, ColRef a, Const (Value.Int 1)), TableScan { table = "t"; cols = [ a ] })
  in
  let t1 = mk () and t2 = mk () in
  Alcotest.(check string) "same canon" (Optimizer.Search.canonical t1)
    (Optimizer.Search.canonical t2);
  let a = Col.fresh "a" Value.TInt in
  let t3 = Select (Cmp (Gt, ColRef a, Const (Value.Int 2)), TableScan { table = "t"; cols = [ a ] }) in
  Alcotest.(check bool) "different constant differs" true
    (Optimizer.Search.canonical t1 <> Optimizer.Search.canonical t3)

let test_cardinality_estimates () =
  let db = Lazy.force tpch in
  let stats = Optimizer.Stats.create db in
  let cat = db.Storage.Database.catalog in
  let def = Option.get (Catalog.find_table cat "orders") in
  let cols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty) def.columns in
  let scan = TableScan { table = "orders"; cols } in
  let env = Optimizer.Card.make_env stats scan in
  let n = Optimizer.Card.estimate env scan in
  Alcotest.(check bool) "scan card = rows" true
    (int_of_float n = Storage.Table.row_count (Storage.Database.table db "orders"));
  (* equality on the key is 1/ndv *)
  let okey = List.hd cols in
  let sel = Select (Cmp (Eq, ColRef okey, Const (Value.Int 1)), scan) in
  let env = Optimizer.Card.make_env stats sel in
  let n' = Optimizer.Card.estimate env sel in
  Alcotest.(check bool) "key equality ~1 row" true (n' >= 0.5 && n' <= 2.0);
  (* range predicate reduces *)
  let sel2 = Select (Cmp (Gt, ColRef okey, Const (Value.Int 1)), scan) in
  let env = Optimizer.Card.make_env stats sel2 in
  Alcotest.(check bool) "range reduces" true (Optimizer.Card.estimate env sel2 < n)

let test_cost_prefers_hash_join () =
  let db = Lazy.force tpch in
  let stats = Optimizer.Stats.create db in
  let cat = db.Storage.Database.catalog in
  let scan name =
    let def = Option.get (Catalog.find_table cat name) in
    let cols = List.map (fun (c : Catalog.column) -> Col.fresh c.col_name c.col_ty) def.columns in
    (TableScan { table = name; cols }, cols)
  in
  let c_scan, ccols = scan "customer" in
  let o_scan, ocols = scan "orders" in
  let ckey = List.hd ccols and o_cust = List.nth ocols 1 in
  let equi = Join { kind = Inner; pred = Cmp (Eq, ColRef ckey, ColRef o_cust); left = c_scan; right = o_scan } in
  let theta = Join { kind = Inner; pred = Cmp (Lt, ColRef ckey, ColRef o_cust); left = c_scan; right = o_scan } in
  Alcotest.(check bool) "equi cheaper than theta" true
    (Optimizer.Cost.of_plan stats equi < Optimizer.Cost.of_plan stats theta)

let test_search_respects_gating () =
  let db = Lazy.force tpch in
  let eng = Engine.create db in
  let sql =
    "select sum(l_extendedprice) as s from lineitem, part \
     where p_partkey = l_partkey and l_quantity < (select 0.5 * avg(l_quantity) \
     from lineitem l2 where l2.l_partkey = part.p_partkey)"
  in
  let has_sa (o : op) = Op.exists_op (function SegmentApply _ -> true | _ -> false) o in
  let has_apply (o : op) = Op.exists_op (function Apply _ -> true | _ -> false) o in
  (* segment_apply off: no SegmentApply in the plan *)
  let p_off =
    Engine.prepare
      ~config:{ Optimizer.Config.full with segment_apply = false; correlated_exec = false }
      eng sql
  in
  Alcotest.(check bool) "no SA when gated off" false (has_sa p_off.plan);
  (* correlated-only config: Apply survives *)
  let p_corr = Engine.prepare ~config:Optimizer.Config.correlated_only eng sql in
  Alcotest.(check bool) "correlated keeps apply" true (has_apply p_corr.plan);
  (* both plans compute the same answer *)
  let r1 = (Engine.execute eng p_off).result.rows in
  let r2 = (Engine.execute eng p_corr).result.rows in
  Support.check_same_bag "gated configs agree" r1 r2

let test_search_improves_cost () =
  let db = Lazy.force tpch in
  let eng = Engine.create db in
  let sql =
    "select sum(l_extendedprice) as s from lineitem, part \
     where p_partkey = l_partkey and l_quantity < (select 0.5 * avg(l_quantity) \
     from lineitem l2 where l2.l_partkey = part.p_partkey)"
  in
  let p = Engine.prepare eng sql in
  Alcotest.(check bool) "explored > 1" true (p.explored > 1);
  Alcotest.(check bool) "best <= seed" true (p.plan_cost <= p.seed_cost)

let test_indexed_apply_chosen_for_small_outer () =
  (* one customer's orders: the correlated index probe must beat a full
     hash join at plan level and stay correct *)
  let db = Lazy.force tpch in
  let eng = Engine.create db in
  let sql = "select o_orderkey from customer, orders where o_custkey = c_custkey and c_custkey = 5" in
  let p = Engine.prepare eng sql in
  let full_rows = (Engine.execute eng p).result.rows in
  let naive = Engine.prepare ~config:Optimizer.Config.decorrelated_only eng sql in
  let naive_rows = (Engine.execute eng naive).result.rows in
  Support.check_same_bag "same rows" full_rows naive_rows

let test_stats_ndv () =
  let db = Lazy.force tpch in
  let stats = Optimizer.Stats.create db in
  let n = Optimizer.Stats.ndv stats "region" "r_regionkey" in
  Alcotest.(check int) "region keys" 5 n;
  (* cached second call *)
  Alcotest.(check int) "cached" 5 (Optimizer.Stats.ndv stats "region" "r_regionkey")

let suite =
  [ Alcotest.test_case "canonical id-insensitive" `Quick test_canonical_id_insensitive;
    Alcotest.test_case "cardinality estimates" `Quick test_cardinality_estimates;
    Alcotest.test_case "cost prefers hash join" `Quick test_cost_prefers_hash_join;
    Alcotest.test_case "config gating" `Quick test_search_respects_gating;
    Alcotest.test_case "search improves cost" `Quick test_search_improves_cost;
    Alcotest.test_case "indexed apply correct" `Quick test_indexed_apply_chosen_for_small_outer;
    Alcotest.test_case "stats ndv" `Quick test_stats_ndv
  ]
