(* The query engine facade: parse → bind → normalize → cost-based
   optimization → execution (the compilation pipeline of the paper's
   Section 4). *)

open Relalg

type t = {
  db : Storage.Database.t;
  stats : Optimizer.Stats.t;
  props_env : Props.env;
}

let create (db : Storage.Database.t) : t =
  { db;
    stats = Optimizer.Stats.create db;
    props_env = Catalog.props_env db.Storage.Database.catalog;
  }

type prepared = {
  sql : string;
  bound : Sqlfront.Binder.bound;
  stages : Normalize.stages;  (** normalization pipeline snapshots *)
  plan : Algebra.op;  (** the chosen plan *)
  plan_cost : float;
  seed_cost : float;
  explored : int;
  config : Optimizer.Config.t;
}

let prepare ?(config = Optimizer.Config.full) ?must (t : t) (sql : string) : prepared =
  let bound = Sqlfront.Binder.bind_sql t.db.Storage.Database.catalog sql in
  let opts =
    { Normalize.env = t.props_env;
      decorrelate = config.decorrelate;
      simplify_oj = config.simplify_oj;
      class2 = config.class2;
    }
  in
  let stages = Normalize.run opts bound.op in
  let outcome =
    if config.max_rounds = 0 then
      { Optimizer.Search.best = stages.normalized;
        best_cost = Optimizer.Cost.of_plan t.stats stages.normalized;
        explored = 1;
        seed_cost = Optimizer.Cost.of_plan t.stats stages.normalized;
      }
    else Optimizer.Search.optimize ?must config t.stats ~env:t.props_env stages.normalized
  in
  { sql;
    bound;
    stages;
    plan = outcome.best;
    plan_cost = outcome.best_cost;
    seed_cost = outcome.seed_cost;
    explored = outcome.explored;
    config;
  }

(* Execute a prepared query.  Returns the rows plus execution counters
   (Apply invocations, rows processed) for the benches. *)
type execution = {
  result : Exec.Executor.result;
  apply_invocations : int;
  rows_processed : int;
  elapsed_s : float;
}

let execute (t : t) (p : prepared) : execution =
  let ctx = Exec.Executor.make_ctx t.db in
  let t0 = Unix.gettimeofday () in
  let rows = Exec.Executor.run ctx Exec.Executor.empty_lookup p.plan in
  let schema = Op.schema p.plan in
  let rows = Exec.Executor.sort_rows schema p.bound.order rows in
  let rows = Exec.Executor.truncate p.bound.limit rows in
  let visible = List.length p.bound.outputs in
  let rows =
    if List.length schema > visible then List.map (fun r -> Array.sub r 0 visible) rows
    else rows
  in
  let t1 = Unix.gettimeofday () in
  { result = { col_names = List.map fst p.bound.outputs; rows };
    apply_invocations = ctx.apply_invocations;
    rows_processed = ctx.rows_processed;
    elapsed_s = t1 -. t0;
  }

let query ?config (t : t) (sql : string) : Exec.Executor.result =
  (execute t (prepare ?config t sql)).result

(* ------------------------------------------------------------------ *)

let explain ?config (t : t) (sql : string) : string =
  let p = prepare ?config t sql in
  let b = Buffer.create 1024 in
  Buffer.add_string b "== subquery class ==\n";
  Buffer.add_string b (Normalize.Classify.to_string p.stages.subquery_class);
  Buffer.add_string b "\n== normalized ==\n";
  Buffer.add_string b (Pp.to_string p.stages.normalized);
  Buffer.add_string b
    (Printf.sprintf "== chosen plan (cost %.0f, seed %.0f, %d alternatives) ==\n"
       p.plan_cost p.seed_cost p.explored);
  Buffer.add_string b (Pp.to_string p.plan);
  Buffer.contents b

let explain_stages ?config (t : t) (sql : string) : string =
  let p = prepare ?config t sql in
  let b = Buffer.create 2048 in
  let stage name op =
    Buffer.add_string b ("== " ^ name ^ " ==\n");
    Buffer.add_string b (Pp.to_string op)
  in
  stage "bound (mutual recursion)" p.stages.bound;
  stage "apply introduced" p.stages.applied;
  stage "decorrelated" p.stages.decorrelated;
  stage "outerjoin simplified" p.stages.oj_simplified;
  stage "normalized" p.stages.normalized;
  stage "chosen plan" p.plan;
  Buffer.contents b

(* Print a result as an aligned table (CLI / examples). *)
let format_result (r : Exec.Executor.result) : string =
  let cells =
    r.col_names
    :: List.map (fun row -> List.map Value.to_string (Array.to_list row)) r.rows
  in
  let ncols = List.length r.col_names in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i s -> if i < ncols then widths.(i) <- max widths.(i) (String.length s)))
    cells;
  let line l =
    String.concat " | " (List.mapi (fun i s -> Printf.sprintf "%-*s" widths.(i) s) l)
  in
  let sep =
    String.concat "-+-" (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  match cells with
  | header :: rows ->
      String.concat "\n" ((line header :: sep :: List.map line rows) @ [])
      ^ Printf.sprintf "\n(%d rows)" (List.length rows)
  | [] -> "(empty)"
