(** The query engine facade: parse → bind → normalize → cost-based
    optimization → execution (the compilation pipeline of the paper's
    Section 4). *)

open Relalg

type t

val create : Storage.Database.t -> t

type prepared = {
  sql : string;
  bound : Sqlfront.Binder.bound;
  stages : Normalize.stages;  (** normalization pipeline snapshots *)
  plan : Algebra.op;  (** the chosen plan *)
  plan_cost : float;
  seed_cost : float;
  explored : int;  (** alternatives considered by the search *)
  config : Optimizer.Config.t;
}

(** Compile a SQL string.  [config] selects the optimizer technology
    level (default {!Optimizer.Config.full}); [must] restricts the
    chosen plan (see {!Optimizer.Search.optimize}).
    @raise Sqlfront.Parser.Parse_error / Sqlfront.Binder.Bind_error *)
val prepare : ?config:Optimizer.Config.t -> ?must:(Algebra.op -> bool) -> t -> string -> prepared

type execution = {
  result : Exec.Executor.result;
  apply_invocations : int;  (** correlated inner evaluations performed *)
  rows_processed : int;
  elapsed_s : float;
}

(** @raise Exec.Executor.Runtime_error for Max1row violations. *)
val execute : t -> prepared -> execution

(** [prepare] + [execute]. *)
val query : ?config:Optimizer.Config.t -> t -> string -> Exec.Executor.result

(** Normalized tree, chosen plan, costs and subquery class. *)
val explain : ?config:Optimizer.Config.t -> t -> string -> string

(** Every pipeline stage (the paper's Figures 2/3/5 for the query). *)
val explain_stages : ?config:Optimizer.Config.t -> t -> string -> string

(** Render a result as an aligned text table. *)
val format_result : Exec.Executor.result -> string
