lib/rules/segment_apply.ml: Col Expr List Op Relalg
