lib/rules/segment_apply.mli: Relalg
