lib/rules/join_rules.ml: Col Expr Hashtbl List Op Relalg
