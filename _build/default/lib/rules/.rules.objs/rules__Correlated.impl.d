lib/rules/correlated.ml: Catalog Col Expr List Op Relalg
