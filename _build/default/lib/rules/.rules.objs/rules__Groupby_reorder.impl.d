lib/rules/groupby_reorder.ml: Col Expr List Op Option Props Relalg Value
