lib/rules/groupby_reorder.mli: Props Relalg
