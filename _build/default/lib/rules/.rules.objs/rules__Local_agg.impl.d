lib/rules/local_agg.ml: Col Expr List Op Relalg Value
