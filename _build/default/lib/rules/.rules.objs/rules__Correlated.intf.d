lib/rules/correlated.mli: Catalog Relalg
