lib/rules/local_agg.mli: Relalg
