(* Inner-join commutativity and associativity, with equality-closure
   predicate derivation.

   The optimizer needs modest join reordering to expose the patterns
   the paper's techniques match — e.g. TPC-H Q17's
   (lineitem ⋈ part) ⋈ agg(lineitem) must re-associate to
   (lineitem ⋈ agg(lineitem)) ⋈ part before SegmentApply introduction
   (Section 3.4.1) can see the two lineitem instances joined together.

   Transitive equality closure derives the predicate for the new inner
   join: from l=p and p=l2, re-associating lineitem next to the
   aggregate derives l=l2. *)

open Relalg
open Relalg.Algebra

let project_restore (cols : Col.t list) (o : op) : op =
  Project (List.map (fun c -> { expr = ColRef c; out = c }) cols, o)

(* union-find over column ids, seeded from equality conjuncts *)
let equality_classes (conjs : expr list) : (int, int) Hashtbl.t * (int, Col.t) Hashtbl.t =
  let parent = Hashtbl.create 16 in
  let col_of = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some p when p <> x ->
        let r = find p in
        Hashtbl.replace parent x r;
        r
    | Some _ -> x
    | None ->
        Hashtbl.replace parent x x;
        x
  in
  let union x y =
    let rx = find x and ry = find y in
    if rx <> ry then Hashtbl.replace parent rx ry
  in
  List.iter
    (fun c ->
      match c with
      | Cmp (Eq, ColRef a, ColRef b) ->
          Hashtbl.replace col_of a.Col.id a;
          Hashtbl.replace col_of b.Col.id b;
          union a.Col.id b.Col.id
      | _ -> ())
    conjs;
  (* normalize parents *)
  let roots = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace roots k (find k)) parent;
  (roots, col_of)

(* equality conjuncts implied between column set [xs] and [ys] *)
let implied_equalities conjs (xs : Col.Set.t) (ys : Col.Set.t) : expr list =
  let roots, col_of = equality_classes conjs in
  let res = ref [] in
  Hashtbl.iter
    (fun xid xroot ->
      match Hashtbl.find_opt col_of xid with
      | Some xc when Col.Set.mem xc xs ->
          Hashtbl.iter
            (fun yid yroot ->
              if xroot = yroot && xid <> yid then
                match Hashtbl.find_opt col_of yid with
                | Some yc when Col.Set.mem yc ys ->
                    res := Cmp (Eq, ColRef xc, ColRef yc) :: !res
                | _ -> ())
            roots
      | _ -> ())
    roots;
  !res

let commute (o : op) : op option =
  match o with
  | Join { kind = Inner; pred; left; right } ->
      Some
        (project_restore (Op.schema o)
           (Join { kind = Inner; pred; left = right; right = left }))
  | _ -> None

(* (A ⋈q B) ⋈p C: produce (A ⋈ C) ⋈ B and (B ⋈ C) ⋈ A, when the new
   inner join has at least one equality conjunct (derived via closure
   if necessary). *)
let associate (o : op) : op option list =
  match o with
  | Join { kind = Inner; pred = p; left = Join { kind = Inner; pred = q; left = a; right = b }; right = c } ->
      let conjs = conjuncts p @ conjuncts q in
      let build x y other =
        let xs = Op.schema_set x and ys = Op.schema_set y in
        let xy = Col.Set.union xs ys in
        let inner_direct, rest =
          List.partition (fun cj -> Col.Set.subset (Expr.cols cj) xy) conjs
        in
        let implied =
          if List.exists (fun cj -> match cj with Cmp (Eq, _, _) -> true | _ -> false) inner_direct
          then []
          else implied_equalities conjs xs ys
        in
        if inner_direct = [] && implied = [] then None
        else begin
          let has_eq =
            List.exists
              (fun cj -> match cj with Cmp (Eq, _, _) -> true | _ -> false)
              (inner_direct @ implied)
          in
          if not has_eq then None
          else
            let inner =
              Join { kind = Inner; pred = conj_list (inner_direct @ implied); left = x; right = y }
            in
            let outer_pred = match rest with [] -> true_ | _ -> conj_list rest in
            let j = Join { kind = Inner; pred = outer_pred; left = inner; right = other } in
            Some (project_restore (Op.schema o) j)
        end
      in
      [ build a c b; build b c a ]
  | _ -> []

let associate_one (o : op) : op option =
  match List.filter_map (fun x -> x) (associate o) with t :: _ -> Some t | [] -> None

(* Pull a filter above an inner join (the inverse of predicate
   pushdown).  Exposes patterns to other rules — e.g. Kim's derived
   table formulation needs the HAVING filter above the join before the
   GroupBy can be pulled. *)
let filter_pullup (o : op) : op option =
  match o with
  | Join { kind = Inner; pred; left; right = Select (q, r) } ->
      Some (Select (q, Join { kind = Inner; pred; left; right = r }))
  | Join { kind = Inner; pred; left = Select (q, l); right } ->
      Some (Select (q, Join { kind = Inner; pred; left = l; right }))
  | _ -> None

(* Pull a projection above an inner join, substituting its definitions
   into the join predicate. *)
let project_pullup (o : op) : op option =
  match o with
  | Join { kind = Inner; pred; left; right = Project (ps, r) } ->
      let sub = Expr.subst_of_projs ps in
      let pass = List.map (fun (c : Col.t) -> { expr = ColRef c; out = c }) (Op.schema left) in
      Some
        (Project
           ( pass @ ps,
             Join { kind = Inner; pred = Expr.subst sub pred; left; right = r } ))
  | Join { kind = Inner; pred; left = Project (ps, l); right } ->
      let sub = Expr.subst_of_projs ps in
      let pass = List.map (fun (c : Col.t) -> { expr = ColRef c; out = c }) (Op.schema right) in
      Some
        (Project
           ( ps @ pass,
             Join { kind = Inner; pred = Expr.subst sub pred; left = l; right } ))
  | _ -> None
