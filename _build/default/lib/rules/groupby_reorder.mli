(** Reordering GroupBy around joins, outerjoins, semijoins and filters
    (paper Sections 3.1 and 3.2).

    Each rule is a partial function matching at the root of a tree; the
    optimizer applies rules at every node.  All rules preserve bag
    semantics; preconditions follow the paper's three-condition test
    (predicate columns / keys / aggregate inputs). *)

open Relalg
open Relalg.Algebra

type env = Props.env

(** S ⋈p (G_{A,F} R)  =  G_{A ∪ cols(S), F} (S ⋈p R), requiring a key
    on S and no aggregate outputs in p.  Fires for either join input. *)
val pull_above_join : env:env -> op -> op option

(** G_{A,F}(S ⋈p R) = π(S ⋈p (G_{A',F} R)): push the aggregate onto one
    join input.  An R-side predicate column not in A is admitted when
    equated with an S-side expression (it joins the pushed grouping
    keys). *)
val push_below_join : env:env -> op -> op option

(** The Section 3.2 variant for left outerjoins, adding the
    compensating project for count aggregates on padded groups. *)
val push_below_outerjoin : env:env -> op -> op option

(** (G_{A,F} R) ⋉p S = G_{A,F}(R ⋉p S) when p avoids aggregate outputs
    and p's non-S columns are grouping columns; also antijoins. *)
val push_semijoin_below_groupby : op -> op option

val pull_semijoin_above_groupby : op -> op option

(** σp (G_{A,F} R) = G_{A,F} (σp R) when cols(p) ⊆ A. *)
val push_filter_below_groupby : op -> op option

val pull_filter_above_groupby : op -> op option
