(** Segmented execution (paper Section 3.4).

    SegmentApply evaluates a parameterized expression once per segment
    of its input — the algebraic form of groupwise processing, enabling
    TPC-H Q17's order-of-magnitude plan. *)

open Relalg.Algebra

(** 3.4.1: when a join (inner, semi, anti or left outer) connects two
    instances of the same expression — one possibly wrapped in extra
    filter/projection/aggregation layers — and the predicate equates a
    column of one instance with its own image in the other, rewrite as
    SegmentApply over that column.  The join variant carries into the
    per-segment expression. *)
val introduce : op -> op option

(** 3.4.2: (R SA_A E) ⋈p T = (R ⋈p T) SA_{A ∪ cols(T)} E when
    cols(p) ⊆ A ∪ cols(T); matches through the projection the
    introduction rule leaves on top. *)
val push_join_below : op -> op option
