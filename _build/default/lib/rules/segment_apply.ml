(* Segmented execution (paper Section 3.4).

   3.4.1  Introducing SegmentApply: when a join connects two instances
   of the same expression — one of them possibly wrapped in an extra
   aggregate and/or filter — and the join predicate equates a column of
   one instance with the image of the SAME column in the other, the
   rows can be partitioned on that column and the join evaluated per
   segment:

       X ⋈_{a = a' ∧ p} f(X')   ~~>   X SA_{a} (S ⋈_p f(S'))

   where X' ≅ X with column bijection m, a' resolves (through f's
   projections and grouping keys) to m(a), and S/S' are SegmentHole
   placeholders for the table-valued parameter.

   3.4.2  Moving joins around SegmentApply:

       (R SA_A E) ⋈p T = (R ⋈p T) SA_{A ∪ cols(T)} E
           iff cols(p) ⊆ A ∪ cols(T)

   (the paper adds key(T) to the segmenting columns; we add all of T's
   columns — functionally equivalent since key(T) determines them, and
   it lets the execution carry T's values through the segment). *)

open Relalg
open Relalg.Algebra

(* Peel filter / projection / aggregation layers off the candidate
   side.  [rebuild] re-applies the layers on a replacement core;
   [resolve] maps an output column of the peeled stack to the core
   column it passes through from, if any. *)
type peeled = {
  core : op;
  rebuild : op -> op;
  resolve : Col.t -> Col.t option;
}

let rec peel (o : op) : peeled =
  match o with
  | Select (p, i) ->
      let inner = peel i in
      { inner with rebuild = (fun c -> Select (p, inner.rebuild c)) }
  | Project (ps, i) ->
      let inner = peel i in
      let resolve (c : Col.t) =
        match List.find_opt (fun pr -> Col.equal pr.out c) ps with
        | Some { expr = ColRef below; _ } -> inner.resolve below
        | _ -> None
      in
      { core = inner.core; rebuild = (fun c -> Project (ps, inner.rebuild c)); resolve }
  | GroupBy { keys; aggs; input } ->
      let inner = peel input in
      let resolve (c : Col.t) =
        if List.exists (Col.equal c) keys then inner.resolve c else None
      in
      { core = inner.core;
        rebuild = (fun c -> GroupBy { keys; aggs; input = inner.rebuild c });
        resolve
      }
  | ScalarAgg { aggs; input } ->
      let inner = peel input in
      { core = inner.core;
        rebuild = (fun c -> ScalarAgg { aggs; input = inner.rebuild c });
        resolve = (fun _ -> None)
      }
  | o -> { core = o; rebuild = (fun c -> c); resolve = (fun c -> Some c) }

(* Only introduce segments over non-trivial cores: segmenting a bare
   1-row expression is useless. *)
let core_is_interesting = function
  | TableScan _ | Join _ | Select _ | Project _ -> true
  | _ -> false

let introduce (o : op) : op option =
  match o with
  | Join { kind = (Inner | Semi | Anti | LeftOuter) as kind; pred; left = x; right = y } -> (
      let p = peel y in
      if not (core_is_interesting p.core) then None
      else
        match Op.iso x p.core with
        | None -> None
        | Some m ->
            (* m : column of x -> column of core *)
            let conjs = conjuncts pred in
            let xset = Op.schema_set x in
            let is_seg_conj c =
              match c with
              | Cmp (Eq, ColRef a, ColRef b) ->
                  let check a b =
                    if Col.Set.mem a xset then
                      match Col.IdMap.find_opt a.Col.id m, p.resolve b with
                      | Some img, Some core_b when Col.equal img core_b -> Some a
                      | _ -> None
                    else None
                  in
                  (match check a b with Some r -> Some r | None -> check b a)
              | _ -> None
            in
            let segs = List.filter_map is_seg_conj conjs in
            if segs = [] then None
            else begin
              let seg_cols = segs in
              let residual = List.filter (fun c -> is_seg_conj c = None) conjs in
              let xcols = Op.schema x in
              (* hole 1 stands for the outer instance inside the inner
                 expression: fresh ids (x itself remains as the outer) *)
              let h1cols = List.map Col.clone xcols in
              let m1 =
                List.fold_left2
                  (fun acc (c : Col.t) f -> Col.IdMap.add c.id f acc)
                  Col.IdMap.empty xcols h1cols
              in
              let hole1 = SegmentHole { cols = h1cols; src = xcols } in
              (* hole 2 replaces the core instance, keeping the core's
                 column ids so the peeled layers need no renaming; its
                 src lists the x columns in core order via the iso *)
              let core_cols = Op.schema p.core in
              let inv =
                Col.IdMap.fold (fun xid (yc : Col.t) acc -> Col.IdMap.add yc.id xid acc) m
                  Col.IdMap.empty
              in
              let src2 =
                List.map
                  (fun (yc : Col.t) ->
                    match Col.IdMap.find_opt yc.id inv with
                    | Some xid -> List.find (fun (c : Col.t) -> c.id = xid) xcols
                    | None -> yc)
                  core_cols
              in
              let hole2 = SegmentHole { cols = core_cols; src = src2 } in
              let y_rebuilt = p.rebuild hole2 in
              let residual' =
                conj_list (List.map (Expr.rename ~map_op:Op.rename m1) residual)
              in
              (* the join variant carries over: within a segment the
                 semi/anti/outer semantics against the aggregated
                 instance are exactly the original ones (paper 3.4.1:
                 "The argument ... is valid for those operators too") *)
              let inner_join =
                Join { kind; pred = residual'; left = hole1; right = y_rebuilt }
              in
              let sa = SegmentApply { seg_cols; outer = x; inner = inner_join } in
              (* restore original output identity: x's columns come from
                 the hole-1 copies (real row values inside the segment),
                 y's columns are unchanged *)
              let projs =
                List.map
                  (fun (c : Col.t) ->
                    match Col.IdMap.find_opt c.id m1 with
                    | Some c' -> { expr = ColRef c'; out = c }
                    | None -> { expr = ColRef c; out = c })
                  (Op.schema o)
              in
              Some (Project (projs, sa))
            end)
  | _ -> None

(* --- 3.4.2: push a join below SegmentApply --------------------------- *)

let push_join_below (o : op) : op option =
  let attempt pred sa_projs seg_cols outer inner t ~t_left =
    let a = Col.Set.of_list seg_cols and tcols = Op.schema_set t in
    (* through the optional projection, map predicate columns back to
       what the SegmentApply produces *)
    let sub =
      match sa_projs with Some ps -> Expr.subst_of_projs ps | None -> Col.IdMap.empty
    in
    let pred' = Expr.subst sub pred in
    (* a hole's copy of a segmenting column always equals the
       segmenting column within its segment; normalize predicate
       references accordingly *)
    let hole_to_seg =
      let m = ref Col.IdMap.empty in
      let rec walk o =
        (match o with
        | SegmentHole { cols; src } ->
            List.iter2
              (fun (h : Col.t) (s : Col.t) ->
                if List.exists (Col.equal s) seg_cols then m := Col.IdMap.add h.id s !m)
              cols src
        | _ -> ());
        List.iter walk (Op.children o)
      in
      walk inner;
      !m
    in
    let pred' = Expr.rename ~map_op:Op.rename hole_to_seg pred' in
    let pred_cols = Expr.cols pred' in
    if Col.Set.subset pred_cols (Col.Set.union a tcols) then begin
      let new_outer = Join { kind = Inner; pred = pred'; left = outer; right = t } in
      let new_seg = seg_cols @ Op.schema t in
      let sa = SegmentApply { seg_cols = new_seg; outer = new_outer; inner } in
      let sa_out =
        match sa_projs with
        | Some ps -> ps
        | None ->
            List.map
              (fun (c : Col.t) -> { expr = ColRef c; out = c })
              (Op.schema (SegmentApply { seg_cols; outer; inner }))
      in
      let t_out = List.map (fun (c : Col.t) -> { expr = ColRef c; out = c }) (Op.schema t) in
      let out = if t_left then t_out @ sa_out else sa_out @ t_out in
      Some (Project (out, sa))
    end
    else None
  in
  match o with
  | Join { kind = Inner; pred; left = SegmentApply { seg_cols; outer; inner }; right = t }
    when not (Op.exists_op (function SegmentApply _ -> true | _ -> false) t) ->
      attempt pred None seg_cols outer inner t ~t_left:false
  | Join { kind = Inner; pred; left = t; right = SegmentApply { seg_cols; outer; inner } }
    when not (Op.exists_op (function SegmentApply _ -> true | _ -> false) t) ->
      attempt pred None seg_cols outer inner t ~t_left:true
  | Join
      { kind = Inner; pred;
        left = Project (ps, SegmentApply { seg_cols; outer; inner });
        right = t
      }
    when not (Op.exists_op (function SegmentApply _ -> true | _ -> false) t) ->
      attempt pred (Some ps) seg_cols outer inner t ~t_left:false
  | Join
      { kind = Inner; pred; left = t;
        right = Project (ps, SegmentApply { seg_cols; outer; inner })
      }
    when not (Op.exists_op (function SegmentApply _ -> true | _ -> false) t) ->
      attempt pred (Some ps) seg_cols outer inner t ~t_left:true
  | _ -> None
