(** Re-introduction of correlated execution during cost-based
    optimization (paper Section 4): a join whose inner side is a
    filtered base-table scan with an index on an equijoin column can
    run as an index-lookup Apply. *)

open Relalg.Algebra

val has_index : Catalog.t -> string -> string -> bool

(** Turn an eligible join back into an Apply whose inner select the
    executor recognizes as an index probe. *)
val join_to_apply : cat:Catalog.t -> op -> op option

(** The inverse (identities (1)/(2)); provided for rule-set
    completeness. *)
val apply_to_join : op -> op option
