(** SplitMix64: a small, fast, deterministic PRNG.  Data generation must
    be reproducible so tests can assert exact results and benchmark
    numbers are comparable between configurations. *)

type t

val create : int -> t
val next_int64 : t -> int64

(** Uniform in [0, bound).  @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform in [lo, hi], inclusive. *)
val range : t -> int -> int -> int

val float : t -> float -> float -> float
val pick : t -> 'a array -> 'a
