(** A scaled-down, deterministic TPC-H data generator.

    Cardinalities follow the TPC-H ratios per scale factor (divided by
    10 to keep laptop runs snappy; see DESIGN.md §4); value
    distributions follow the dbgen shapes that matter to the reproduced
    queries (brands, containers, type grammar, quantities). *)

(** Expected row counts per table for a scale factor (lineitem omitted:
    1-7 lines per order). *)
val expected_rows : float -> (string * int) list

(** Populate all eight TPC-H tables of [db] and build the declared
    indexes.  Deterministic in [seed] (default 42). *)
val generate : ?seed:int -> sf:float -> Storage.Database.t -> unit

(** A freshly created and populated TPC-H database. *)
val database : ?seed:int -> sf:float -> unit -> Storage.Database.t
