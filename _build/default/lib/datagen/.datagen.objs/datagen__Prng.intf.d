lib/datagen/prng.mli:
