lib/datagen/tpch_gen.ml: Array Catalog Float List Printf Prng Relalg Storage
