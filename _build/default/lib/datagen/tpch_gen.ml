(* A scaled-down, deterministic TPC-H data generator.

   Cardinalities follow the TPC-H ratios (per scale factor SF):
     region 5, nation 25, supplier 10000*SF, customer 150000*SF,
     part 200000*SF, partsupp 4 per part, orders 10 per customer,
     lineitem 1-7 per order.

   Value distributions follow the dbgen shapes that matter to the
   reproduced queries: p_brand "Brand#MN", p_container from the official
   container list, p_size 1..50, p_type from the official type grammar
   (so '%BRASS' is selective), l_quantity 1..50, ps_supplycost
   1..1000, o_totalprice as a plausible aggregate.  Text fields are
   synthetic but carry the key, which keeps rows distinguishable in
   tests. *)

module Value = Relalg.Value

let regions = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nations =
  [| ("ALGERIA", 0); ("ARGENTINA", 1); ("BRAZIL", 1); ("CANADA", 1); ("EGYPT", 4);
     ("ETHIOPIA", 0); ("FRANCE", 3); ("GERMANY", 3); ("INDIA", 2); ("INDONESIA", 2);
     ("IRAN", 4); ("IRAQ", 4); ("JAPAN", 2); ("JORDAN", 4); ("KENYA", 0);
     ("MOROCCO", 0); ("MOZAMBIQUE", 0); ("PERU", 1); ("CHINA", 2); ("ROMANIA", 3);
     ("SAUDI ARABIA", 4); ("VIETNAM", 2); ("RUSSIA", 3); ("UNITED KINGDOM", 3);
     ("UNITED STATES", 1)
  |]

let containers =
  [| "SM CASE"; "SM BOX"; "SM PACK"; "SM PKG"; "MED BAG"; "MED BOX"; "MED PKG";
     "MED PACK"; "LG CASE"; "LG BOX"; "LG PACK"; "LG PKG"; "JUMBO BAG"; "JUMBO BOX";
     "JUMBO PACK"; "JUMBO PKG"; "WRAP CASE"; "WRAP BOX"; "WRAP PACK"; "WRAP PKG"
  |]

let type_syllable_1 = [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]
let type_syllable_2 = [| "ANODIZED"; "BURNISHED"; "PLATED"; "POLISHED"; "BRUSHED" |]
let type_syllable_3 = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |]

let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]
let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

type sizes = {
  suppliers : int;
  customers : int;
  parts : int;
  orders : int; (* total *)
}

let sizes_of_sf sf =
  let s base = max 1 (int_of_float (float_of_int base *. sf)) in
  { suppliers = s 10_000 / 10;  (* /10: keep laptop-scale runs snappy *)
    customers = s 150_000 / 10;
    parts = s 200_000 / 10;
    orders = s 1_500_000 / 10
  }

(* exposed for tests *)
let expected_rows sf =
  let z = sizes_of_sf sf in
  [ ("region", 5); ("nation", 25); ("supplier", z.suppliers); ("customer", z.customers);
    ("part", z.parts); ("partsupp", z.parts * 4); ("orders", z.orders) ]

let money rng lo hi = Value.Float (Float.round (Prng.float rng lo hi *. 100.) /. 100.)

let generate ?(seed = 42) ~sf (db : Storage.Database.t) : unit =
  let rng = Prng.create seed in
  let z = sizes_of_sf sf in
  let open Value in
  (* region *)
  Storage.Table.load
    (Storage.Database.table db "region")
    (List.init (Array.length regions) (fun i ->
         [| Int i; Str regions.(i); Str ("region comment " ^ string_of_int i) |]));
  (* nation *)
  Storage.Table.load
    (Storage.Database.table db "nation")
    (List.init (Array.length nations) (fun i ->
         let name, rk = nations.(i) in
         [| Int i; Str name; Int rk; Str ("nation comment " ^ string_of_int i) |]));
  (* supplier *)
  Storage.Table.load
    (Storage.Database.table db "supplier")
    (List.init z.suppliers (fun i ->
         let k = i + 1 in
         [| Int k;
            Str (Printf.sprintf "Supplier#%09d" k);
            Str (Printf.sprintf "addr-s%d" k);
            Int (Prng.int rng (Array.length nations));
            Str (Printf.sprintf "%02d-%07d" (10 + Prng.int rng 25) (Prng.int rng 10_000_000));
            money rng (-999.99) 9999.99;
            Str (Printf.sprintf "supplier comment %d" k)
         |]));
  (* customer *)
  Storage.Table.load
    (Storage.Database.table db "customer")
    (List.init z.customers (fun i ->
         let k = i + 1 in
         [| Int k;
            Str (Printf.sprintf "Customer#%09d" k);
            Str (Printf.sprintf "addr-c%d" k);
            Int (Prng.int rng (Array.length nations));
            Str (Printf.sprintf "%02d-%07d" (10 + Prng.int rng 25) (Prng.int rng 10_000_000));
            money rng (-999.99) 9999.99;
            Str (Prng.pick rng segments)
         |]));
  (* part *)
  Storage.Table.load
    (Storage.Database.table db "part")
    (List.init z.parts (fun i ->
         let k = i + 1 in
         let brand =
           Printf.sprintf "Brand#%d%d" (1 + Prng.int rng 5) (1 + Prng.int rng 5)
         in
         let ty =
           Printf.sprintf "%s %s %s" (Prng.pick rng type_syllable_1)
             (Prng.pick rng type_syllable_2) (Prng.pick rng type_syllable_3)
         in
         [| Int k;
            Str (Printf.sprintf "part name %d" k);
            Str (Printf.sprintf "Manufacturer#%d" (1 + Prng.int rng 5));
            Str brand;
            Str ty;
            Int (1 + Prng.int rng 50);
            Str (Prng.pick rng containers);
            Float (900. +. (float_of_int (k mod 1000) /. 10.))
         |]));
  (* partsupp: 4 suppliers per part *)
  let partsupp =
    List.concat
      (List.init z.parts (fun i ->
           let pk = i + 1 in
           List.init 4 (fun j ->
               let sk = 1 + ((pk + (j * (z.suppliers / 4 + 1))) mod z.suppliers) in
               [| Int pk; Int sk; Int (1 + Prng.int rng 9999); money rng 1.0 1000.0 |])))
  in
  Storage.Table.load (Storage.Database.table db "partsupp") partsupp;
  (* orders + lineitem *)
  let date0 = Value.date_of_ymd 1992 1 1 in
  let orders = ref [] and lineitems = ref [] in
  for i = z.orders downto 1 do
    let ok = i in
    let ck = 1 + Prng.int rng z.customers in
    let odate = date0 + Prng.int rng 2400 in
    let nlines = 1 + Prng.int rng 7 in
    let total = ref 0.0 in
    for ln = 1 to nlines do
      let pk = 1 + Prng.int rng z.parts in
      (* pick one of the 4 suppliers of that part, as dbgen does *)
      let j = Prng.int rng 4 in
      let sk = 1 + ((pk + (j * (z.suppliers / 4 + 1))) mod z.suppliers) in
      let qty = float_of_int (1 + Prng.int rng 50) in
      let price = Float.round (qty *. Prng.float rng 90. 1100.) /. 1. in
      total := !total +. price;
      lineitems :=
        [| Int ok; Int pk; Int sk; Int ln; Float qty; Float price;
           Float (Float.round (Prng.float rng 0. 0.10 *. 100.) /. 100.);
           Float (Float.round (Prng.float rng 0. 0.08 *. 100.) /. 100.);
           Str (Prng.pick rng [| "R"; "A"; "N" |]);
           Date (odate + Prng.int rng 120)
        |]
        :: !lineitems
    done;
    orders :=
      [| Int ok; Int ck;
         Str (Prng.pick rng [| "O"; "F"; "P" |]);
         Float !total; Date odate; Str (Prng.pick rng priorities)
      |]
      :: !orders
  done;
  Storage.Table.load (Storage.Database.table db "orders") !orders;
  Storage.Table.load (Storage.Database.table db "lineitem") !lineitems;
  Storage.Database.build_declared_indexes db

(* Convenience: a fresh TPC-H database at scale factor [sf]. *)
let database ?seed ~sf () : Storage.Database.t =
  let db = Storage.Database.create (Catalog.tpch ()) in
  generate ?seed ~sf db;
  db
