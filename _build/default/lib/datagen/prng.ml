(* SplitMix64: a small, fast, deterministic PRNG.  Data generation must
   be reproducible across runs so that tests can assert exact results
   and benchmark numbers are comparable between configurations. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* uniform int in [0, bound) *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(* uniform int in [lo, hi] inclusive *)
let range t lo hi = lo + int t (hi - lo + 1)

let float t lo hi =
  let u =
    Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
    /. 9007199254740992.0 (* 2^53 *)
  in
  lo +. (u *. (hi -. lo))

let pick t arr = arr.(int t (Array.length arr))
