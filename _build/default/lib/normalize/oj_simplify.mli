(** Outerjoin simplification under derived null-rejection
    (Section 1.2), including the paper's extension: deriving
    null-rejection THROUGH GroupBy operators, which is what turns the
    decorrelated Figure 5 outerjoin into a join. *)

open Relalg
open Relalg.Algebra

(** Walk with an explicit set of columns whose NULLs the context
    rejects (exposed for tests). *)
val simplify_with : Col.Set.t -> op -> op

val simplify : op -> op
