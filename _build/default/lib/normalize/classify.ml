(* Subquery classes (paper Section 2.5).

   Class 1: removable with no additional common subexpressions — the
            tree contains no Apply after normalization.
   Class 2: removable only by duplicating subexpressions (identities
            (5)-(7)); kept correlated by normalization.
   Class 3: exception subqueries (Max1row required at runtime);
            fundamentally non-relational.

   Classification inspects the normalized tree: residual Applies with a
   Max1row right child are Class 3; other residual Applies are Class 2;
   a tree without Applies (that had subqueries to begin with) is
   Class 1. *)

open Relalg
open Relalg.Algebra

type cls = Class1 | Class2 | Class3 | NoSubquery

let to_string = function
  | Class1 -> "class 1 (fully flattened)"
  | Class2 -> "class 2 (kept correlated: needs common subexpressions)"
  | Class3 -> "class 3 (exception subquery: Max1row)"
  | NoSubquery -> "no subqueries"

let rec has_max1row (o : op) =
  match o with Max1row _ -> true | _ -> List.exists has_max1row (Op.children o)

let rec residual_expr_subquery (o : op) : bool =
  List.exists Expr.has_subquery (Op.local_exprs o)
  || List.exists residual_expr_subquery (Op.children o)

let classify ~(had_subqueries : bool) (normalized : op) : cls =
  let residual_applies = ref [] in
  let rec walk o =
    (match o with Apply a -> residual_applies := a.right :: !residual_applies | _ -> ());
    List.iter walk (Op.children o)
  in
  walk normalized;
  (* a subquery left inside a scalar expression after normalization was
     kept only for exception semantics (conditional CASE execution of
     a Max1row-guarded branch): Class 3 *)
  if residual_expr_subquery normalized then Class3
  else
    match !residual_applies with
    | [] -> if had_subqueries then Class1 else NoSubquery
    | rs -> if List.exists has_max1row rs then Class3 else Class2

let rec op_has_subquery (o : op) : bool =
  List.exists Expr.has_subquery (Op.local_exprs o)
  || List.exists op_has_subquery (Op.children o)
