(* Query normalization driver (Section 4, "Query normalization").

   Pipeline:
   1. remove scalar/relational mutual recursion (Apply introduction) —
      always possible;
   2. remove correlations (Apply removal) — usually possible; Class 2/3
      subqueries remain as residual Applies;
   3. simplify outerjoins into joins under derived null-rejection;
   4. cleanup: merge/eliminate trivial operators, push selections.

   The [stages] record exposes each intermediate tree so that callers
   (tests, the EXPLAIN facility, the decorrelation walkthrough example)
   can observe the Figure 5 progression. *)

open Relalg

(* Re-export the pass modules: [normalize.ml] is the library's root
   module, so submodules are reachable only through these aliases. *)
module Apply_intro = Apply_intro
module Decorrelate = Decorrelate
module Oj_simplify = Oj_simplify
module Simplify = Simplify
module Prune = Prune
module Classify = Classify

type stages = {
  bound : Algebra.op;  (** binder output: mutual recursion *)
  applied : Algebra.op;  (** after Apply introduction (Figure 2 shape) *)
  decorrelated : Algebra.op;  (** after Apply removal (Figure 5, line 2) *)
  oj_simplified : Algebra.op;  (** after outerjoin simplification (line 4) *)
  normalized : Algebra.op;  (** after cleanup/pushdown: the optimizer input *)
  subquery_class : Classify.cls;
}

type options = {
  env : Props.env;
  decorrelate : bool;  (** master switch for Apply removal *)
  simplify_oj : bool;
  class2 : bool;  (** allow identities (5)-(7) during normalization *)
}

let default_options env = { env; decorrelate = true; simplify_oj = true; class2 = false }

let run (opts : options) (bound : Algebra.op) : stages =
  let had_subqueries = Classify.op_has_subquery bound in
  let applied = Apply_intro.transform opts.env bound in
  let decorrelated =
    if opts.decorrelate then
      Decorrelate.remove { env = opts.env; class2 = opts.class2 } applied
    else applied
  in
  let oj_simplified =
    if opts.simplify_oj then Oj_simplify.simplify decorrelated else decorrelated
  in
  let normalized = Simplify.simplify oj_simplified in
  let normalized = Prune.prune ~env:opts.env (Op.schema_set normalized) normalized in
  let normalized = Simplify.simplify normalized in
  let subquery_class = Classify.classify ~had_subqueries normalized in
  { bound; applied; decorrelated; oj_simplified; normalized; subquery_class }

let normalize (opts : options) (bound : Algebra.op) : Algebra.op =
  (run opts bound).normalized
