lib/normalize/decorrelate.mli: Props Relalg
