lib/normalize/apply_intro.mli: Props Relalg
