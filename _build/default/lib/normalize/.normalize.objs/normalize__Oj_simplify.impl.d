lib/normalize/oj_simplify.ml: Col Expr List Op Relalg
