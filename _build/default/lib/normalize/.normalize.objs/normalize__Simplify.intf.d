lib/normalize/simplify.mli: Relalg
