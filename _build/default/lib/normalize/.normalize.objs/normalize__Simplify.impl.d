lib/normalize/simplify.ml: Col Expr Hashtbl List Op Relalg Value
