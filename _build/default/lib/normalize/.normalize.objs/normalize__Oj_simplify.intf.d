lib/normalize/oj_simplify.mli: Col Relalg
