lib/normalize/prune.mli: Col Props Relalg
