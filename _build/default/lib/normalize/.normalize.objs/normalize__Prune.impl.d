lib/normalize/prune.ml: Col Expr List Op Props Relalg
