lib/normalize/normalize.ml: Algebra Apply_intro Classify Decorrelate Oj_simplify Op Props Prune Relalg Simplify
