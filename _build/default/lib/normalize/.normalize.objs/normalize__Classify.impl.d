lib/normalize/classify.ml: Expr List Op Relalg
