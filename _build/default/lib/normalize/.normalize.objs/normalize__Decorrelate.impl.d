lib/normalize/decorrelate.ml: Col Expr List Op Option Props Relalg Value
