lib/normalize/classify.mli: Relalg
