lib/normalize/apply_intro.ml: Col Expr List Op Option Props Relalg Value
