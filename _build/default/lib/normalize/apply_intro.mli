(** Removal of the mutual recursion between scalar and relational
    operators (paper Section 2.2): every subquery inside a scalar
    expression is evaluated explicitly through an Apply operator
    introduced below the consuming relational operator.

    Existential/quantified conjuncts of a Select become
    Apply-semijoin/antijoin (Section 2.4); scalar subqueries get
    Apply-outerjoin with Max1row unless keys prove at most one row;
    value-context boolean subqueries rewrite through scalar count
    aggregates; a CASE containing a subquery that may raise stays
    lazily evaluated (conditional scalar execution). *)

open Relalg
open Relalg.Algebra

(** Exposed for tests. *)
val case_needs_conditional_execution : Props.env -> expr -> bool

val transform : Props.env -> op -> op
