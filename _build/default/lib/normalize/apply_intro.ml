(* Removal of mutual recursion between scalar and relational operators
   (paper Section 2.2).

   The binder's tree contains scalar nodes with relational children
   (Subquery, Exists, QuantCmp).  This pass introduces Apply operators
   below the consuming operator so that every subquery is evaluated
   explicitly, and scalar expressions only reference columns:

       e(Q) R   ~~>   e(q) (R A⊗ Q)

   Special cases from Section 2.4:
   - a relational select whose conjunct is an existential subquery
     becomes Apply-semijoin (exists) or Apply-antisemijoin (not
     exists); quantified comparisons likewise, with the comparison as
     the Apply predicate;
   - other subquery utilizations (inside projections, disjunctions,
     CASE...) get a value-producing form: scalar subqueries via
     Apply-outerjoin (+ Max1row when more than one row is possible),
     boolean subqueries via scalar count aggregates;
   - Max1row is elided when keys prove the subquery returns at most one
     row. *)

open Relalg
open Relalg.Algebra

let fresh_agg name fn = { fn; out = Col.fresh name Value.TFloat }

(* Wrap a scalar subquery body in Max1row unless provably <= 1 row. *)
let guard_max1row env (q : op) : op =
  if Props.max_one_row ~env q then q else Max1row q

let single_output_col (q : op) : Col.t =
  match Op.schema q with
  | [ c ] -> c
  | _ -> invalid_arg "subquery must produce exactly one column"

(* 3VL helper: [cmp_value op a b] as a value-producing expression. *)
let quant_result_expr op quant (lhs : expr) (qcol : Col.t) rel (transform : op -> op) :
    expr * (op -> op) =
  (* Rewrite e op ANY/ALL (Q) in a value context via two scalar counts
     over the subquery: matches and unknowns. *)
  let cmp = Cmp (op, lhs, ColRef qcol) in
  let cnt_t =
    fresh_agg "cnt_t" (Count (Case ([ (cmp, Const (Value.Int 1)) ], None)))
  in
  let cnt_u =
    fresh_agg "cnt_u" (Count (Case ([ (IsNull cmp, Const (Value.Int 1)) ], None)))
  in
  let agg_op = ScalarAgg { aggs = [ cnt_t; cnt_u ]; input = transform rel } in
  let attach r = Apply { kind = Inner; pred = true_; left = r; right = agg_op } in
  let gt0 c = Cmp (Gt, ColRef c, Const (Value.Int 0)) in
  match quant with
  | Any ->
      ( Case
          ( [ (gt0 cnt_t.out, Const (Value.Bool true));
              (gt0 cnt_u.out, Const Value.Null)
            ],
            Some (Const (Value.Bool false)) ),
        attach )
  | All ->
      (* e op ALL Q: false if a counterexample exists, unknown if any
         comparison is unknown, else true *)
      let ncmp =
        Cmp
          ( (match op with Eq -> Ne | Ne -> Eq | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt),
            lhs, ColRef qcol )
      in
      let cnt_f =
        fresh_agg "cnt_f" (Count (Case ([ (ncmp, Const (Value.Int 1)) ], None)))
      in
      let agg_op = ScalarAgg { aggs = [ cnt_f; cnt_u ]; input = transform rel } in
      let attach r = Apply { kind = Inner; pred = true_; left = r; right = agg_op } in
      ( Case
          ( [ (gt0 cnt_f.out, Const (Value.Bool false));
              (gt0 cnt_u.out, Const Value.Null)
            ],
            Some (Const (Value.Bool true)) ),
        attach )

(* Does this CASE contain a scalar subquery that could raise (Max1row
   not provably unnecessary)?  If so its evaluation must stay lazy. *)
let case_needs_conditional_execution env (e : expr) : bool =
  let exception Found in
  (* only Subquery nodes can raise Max1row errors (Exists/IN/quantified
     rewrite through counts, which never raise) *)
  let rec visit e =
    match e with
    | Subquery q -> if not (Props.max_one_row ~env q) then raise Found
    | Exists q | InSub (_, q) | QuantCmp (_, _, _, q) -> ignore q
    | Arith (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
        visit a;
        visit b
    | Not a | IsNull a | Like (a, _) -> visit a
    | Case (bs, els) ->
        List.iter
          (fun (c, v) ->
            visit c;
            visit v)
          bs;
        Option.iter visit els
    | ColRef _ | Const _ -> ()
  in
  try
    visit e;
    false
  with Found -> true

(* Replace every relational child inside expression [e], attaching the
   needed Apply operators around [rel].  Returns the rewritten
   expression and the new relation. *)
let rec extract_from_expr env (transform : op -> op) (rel : op) (e : expr) : op * expr =
  let recurse = extract_from_expr env transform in
  match e with
  | ColRef _ | Const _ -> (rel, e)
  | Arith (o, a, b) ->
      let rel, a = recurse rel a in
      let rel, b = recurse rel b in
      (rel, Arith (o, a, b))
  | Cmp (o, a, b) ->
      let rel, a = recurse rel a in
      let rel, b = recurse rel b in
      (rel, Cmp (o, a, b))
  | And (a, b) ->
      let rel, a = recurse rel a in
      let rel, b = recurse rel b in
      (rel, And (a, b))
  | Or (a, b) ->
      let rel, a = recurse rel a in
      let rel, b = recurse rel b in
      (rel, Or (a, b))
  | Not a ->
      let rel, a = recurse rel a in
      (rel, Not a)
  | IsNull a ->
      let rel, a = recurse rel a in
      (rel, IsNull a)
  | Like (a, p) ->
      let rel, a = recurse rel a in
      (rel, Like (a, p))
  | Case (_, _) when case_needs_conditional_execution env e ->
      (* Conditional scalar execution (paper Section 2.4): a CASE branch
         containing a subquery that may raise at runtime (Max1row not
         elidable) must not be evaluated eagerly — the branch may be
         guarded by the condition precisely to avoid the error.  We keep
         the mutual recursion for the whole CASE; the executor evaluates
         it lazily, branch by branch.  (The paper uses a "modified
         version of Apply with conditional execution"; lazy scalar
         evaluation is the equivalent in an interpreter, and the paper
         notes this scenario "is very rare in practice".) *)
      (rel, e)
  | Case (branches, els) ->
      (* subqueries in CASE branches that cannot raise are evaluated
         eagerly like any other value context *)
      let rel, branches =
        List.fold_left
          (fun (rel, acc) (c, v) ->
            let rel, c = recurse rel c in
            let rel, v = recurse rel v in
            (rel, (c, v) :: acc))
          (rel, []) branches
      in
      let rel, els =
        match els with
        | None -> (rel, None)
        | Some x ->
            let rel, x = recurse rel x in
            (rel, Some x)
      in
      (rel, Case (List.rev branches, els))
  | Subquery q ->
      let q = transform q in
      let qcol = single_output_col q in
      let guarded = guard_max1row env q in
      ( Apply { kind = LeftOuter; pred = true_; left = rel; right = guarded },
        ColRef qcol )
  | Exists q ->
      (* value context: rewrite through a scalar count (Section 2.4) *)
      let q = transform q in
      let cnt = fresh_agg "cnt" CountStar in
      let agg_op = ScalarAgg { aggs = [ cnt ]; input = q } in
      ( Apply { kind = Inner; pred = true_; left = rel; right = agg_op },
        Cmp (Gt, ColRef cnt.out, Const (Value.Int 0)) )
  | InSub (a, q) -> recurse rel (QuantCmp (Eq, Any, a, q))
  | QuantCmp (op, quant, a, q) ->
      let rel, a = recurse rel a in
      let qcol = single_output_col q in
      let e, attach = quant_result_expr op quant a qcol q transform in
      (attach rel, e)

(* Is this conjunct a direct existential / quantified predicate that can
   become an Apply join variant? *)
type conjunct_form =
  | Plain of expr
  | SemiJoin of op * expr  (** subquery, predicate on (outer, subquery) *)
  | AntiJoin of op * expr

let classify_conjunct (c : expr) : conjunct_form =
  match c with
  | Exists q -> SemiJoin (q, true_)
  | Not (Exists q) -> AntiJoin (q, true_)
  | QuantCmp (op, Any, a, q) when not (Expr.has_subquery a) ->
      SemiJoin (q, Cmp (op, a, ColRef (single_output_col q)))
  | QuantCmp (op, All, a, q) when not (Expr.has_subquery a) ->
      (* e op ALL Q passes iff no row of Q makes the comparison false or
         unknown *)
      let qcol = single_output_col q in
      let ncmp =
        Cmp
          ( (match op with Eq -> Ne | Ne -> Eq | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt),
            a, ColRef qcol )
      in
      AntiJoin (q, Or (ncmp, Or (IsNull a, IsNull (ColRef qcol))))
  | c -> Plain c

(* The pass. *)
let rec transform env (o : op) : op =
  match o with
  | Select (p, input) ->
      let input = transform env input in
      let conjs = conjuncts p in
      (* fold conjuncts left to right, threading the relation *)
      let rel, plains =
        List.fold_left
          (fun (rel, plains) c ->
            match classify_conjunct c with
            | SemiJoin (q, pred) ->
                (Apply { kind = Semi; pred; left = rel; right = transform env q }, plains)
            | AntiJoin (q, pred) ->
                (Apply { kind = Anti; pred; left = rel; right = transform env q }, plains)
            | Plain c ->
                if Expr.has_subquery c then
                  let rel, c = extract_from_expr env (transform env) rel c in
                  (rel, c :: plains)
                else (rel, c :: plains))
          (input, []) conjs
      in
      (match List.rev plains with
      | [] -> rel
      | ps -> Select (conj_list ps, rel))
  | Project (projs, input) ->
      let input = transform env input in
      let rel, projs =
        List.fold_left
          (fun (rel, acc) pr ->
            if Expr.has_subquery pr.expr then
              let rel, e = extract_from_expr env (transform env) rel pr.expr in
              (rel, { pr with expr = e } :: acc)
            else (rel, pr :: acc))
          (input, []) projs
      in
      Project (List.rev projs, rel)
  | Join { kind = Inner; pred; left; right } when Expr.has_subquery pred ->
      (* evaluate the subquery above the join *)
      transform env (Select (pred, Join { kind = Inner; pred = true_; left; right }))
  | Join { kind; pred; left; right } when Expr.has_subquery pred ->
      (* subquery in an outer/semi/anti join ON clause: evaluate the
         subquery against the join's combined input is not expressible
         without changing join semantics; keep the mutual recursion for
         this rare case (executed by the interpreter directly) *)
      Join { kind; pred; left = transform env left; right = transform env right }
  | GroupBy { keys; aggs; input }
    when List.exists (fun a -> match agg_input_expr a.fn with Some e -> Expr.has_subquery e | None -> false) aggs ->
      (* subquery inside an aggregate argument: evaluate below *)
      let input = transform env input in
      let rel, aggs =
        List.fold_left
          (fun (rel, acc) a ->
            match agg_input_expr a.fn with
            | Some e when Expr.has_subquery e ->
                let rel, e = extract_from_expr env (transform env) rel e in
                (rel, { a with fn = agg_with_input a.fn e } :: acc)
            | _ -> (rel, a :: acc))
          (input, []) aggs
      in
      GroupBy { keys; aggs = List.rev aggs; input = rel }
  | o -> Op.with_children o (List.map (transform env) (Op.children o))
