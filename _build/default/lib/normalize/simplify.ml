(* Tree cleanup and heuristic predicate pushdown.

   Part of query normalization (Section 4, "Query normalization"):
   simplifications that are always beneficial and need no costing —
   removing trivial operators, merging selects, pushing filter
   conjuncts towards the tables they constrain, and detecting empty
   subexpressions. *)

open Relalg
open Relalg.Algebra

(* --- single-node simplifications ------------------------------------ *)

let is_identity_project projs input =
  let sch = Op.schema input in
  List.length projs = List.length sch
  && List.for_all2
       (fun p c -> match p.expr with ColRef c' -> Col.equal c' c && Col.equal p.out c | _ -> false)
       projs sch

let rec const_fold (e : expr) : expr =
  match e with
  | And (a, b) -> (
      match const_fold a, const_fold b with
      | Const (Value.Bool true), x | x, Const (Value.Bool true) -> x
      | (Const (Value.Bool false) as f), _ | _, (Const (Value.Bool false) as f) -> f
      | a, b -> And (a, b))
  | Or (a, b) -> (
      match const_fold a, const_fold b with
      | (Const (Value.Bool true) as t), _ | _, (Const (Value.Bool true) as t) -> t
      | Const (Value.Bool false), x | x, Const (Value.Bool false) -> x
      | a, b -> Or (a, b))
  | Not a -> (
      match const_fold a with
      | Const (Value.Bool b) -> Const (Value.Bool (not b))
      | a -> Not a)
  | Cmp (op, a, b) -> (
      match const_fold a, const_fold b with
      | Const x, Const y when not (Value.is_null x || Value.is_null y) ->
          let c = Value.compare x y in
          Const
            (Value.Bool
               (match op with
               | Eq -> c = 0
               | Ne -> c <> 0
               | Lt -> c < 0
               | Le -> c <= 0
               | Gt -> c > 0
               | Ge -> c >= 0))
      | a, b -> Cmp (op, a, b))
  | e -> e

(* Deduplicate conjuncts modulo the symmetry of equality (a=b vs b=a),
   so that redundant derived predicates (from the equality-closure join
   rules) do not double-count in selectivity estimation. *)
let dedup_conjuncts (p : expr) : expr =
  let norm c =
    match c with
    | Cmp (Eq, a, b) ->
        if Expr.to_string a <= Expr.to_string b then c else Cmp (Eq, b, a)
    | c -> c
  in
  let seen = Hashtbl.create 8 in
  let kept =
    List.filter
      (fun c ->
        let key = Expr.to_string (norm c) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      (conjuncts p)
  in
  conj_list kept

let simplify_node (o : op) : op =
  match o with
  | Select (p, i) -> (
      match const_fold (dedup_conjuncts p) with
      | Const (Value.Bool true) -> i
      | p' -> (
          match i with
          | Select (q, i') -> Select (conj p' q, i')
          | _ -> Select (p', i)))
  | Join j when not (is_true_const j.pred) ->
      Join { j with pred = dedup_conjuncts j.pred }
  | Apply a when not (is_true_const a.pred) ->
      Apply { a with pred = dedup_conjuncts a.pred }
  | Project (projs, i) when is_identity_project projs i -> i
  | Project (projs, Project (inner, i)) ->
      (* merge project-over-project by substitution *)
      let sub = Expr.subst_of_projs inner in
      Project (List.map (fun p -> { p with expr = Expr.subst sub p.expr }) projs, i)
  | o -> o

(* --- predicate pushdown --------------------------------------------- *)

(* Push the conjuncts of selects down through projects, joins and
   group-bys, as far as their column requirements allow.  Only inner
   join variants accept pushes into the right side; the left (preserved)
   side of an outerjoin accepts pushes. *)
let rec push_select (o : op) : op =
  match o with
  | Select (p, input) ->
      let conjs = List.map const_fold (conjuncts p) in
      push_conjuncts conjs input
  | o -> Op.with_children o (List.map push_select (Op.children o))

and push_conjuncts (conjs : expr list) (input : op) : op =
  match input with
  | Select (q, i) -> push_conjuncts (conjs @ conjuncts q) i
  | Join { kind; pred; left; right } ->
      let lcols = Op.schema_set left and rcols = Op.schema_set right in
      (* split the join's own predicate: side-only conjuncts move into
         the children where the join variant permits —
         Inner: both sides; LeftOuter/Semi: right side always, left side
         only for Semi (an Anti's or LeftOuter's left rows survive a
         false predicate, a filter would drop them) *)
      let jconjs = conjuncts pred in
      let left_only c = Col.Set.subset (Expr.cols c) lcols in
      let right_only c = Col.Set.subset (Expr.cols c) rcols in
      let jp_left, jconjs =
        match kind with
        | Inner | Semi -> List.partition left_only jconjs
        | LeftOuter | Anti -> ([], jconjs)
      in
      let jp_right, jconjs =
        match kind with
        | Inner | LeftOuter | Semi | Anti -> List.partition right_only jconjs
      in
      (* now route the incoming filter conjuncts *)
      let to_left, rest = List.partition left_only conjs in
      let can_push_right = kind = Inner in
      let to_right, stay =
        if can_push_right then List.partition right_only rest else ([], rest)
      in
      let into_pred, stay =
        (* conjuncts spanning both sides fold into an inner join's
           predicate *)
        if kind = Inner then (stay, []) else ([], stay)
      in
      let left = push_conjuncts (to_left @ jp_left) left in
      let right = push_conjuncts (to_right @ jp_right) right in
      let j = Join { kind; pred = conj_list (jconjs @ into_pred); left; right } in
      reselect stay j
  | Project (projs, i) ->
      (* substitute and push through when every referenced output is a
         simple column or the conjunct only uses pass-through columns *)
      let sub = Expr.subst_of_projs projs in
      let pushable, stay =
        List.partition
          (fun c ->
            let c' = Expr.subst sub c in
            Col.Set.subset (Expr.cols c') (Op.schema_set i) && not (Expr.has_subquery c'))
          conjs
      in
      let pushed = List.map (Expr.subst sub) pushable in
      reselect stay (Project (projs, push_conjuncts pushed i))
  | GroupBy { keys; aggs; input = i } ->
      (* a conjunct over grouping columns only filters whole groups:
         push it below *)
      let keyset = Col.Set.of_list keys in
      let pushable, stay =
        List.partition (fun c -> Col.Set.subset (Expr.cols c) keyset) conjs
      in
      reselect stay (GroupBy { keys; aggs; input = push_conjuncts pushable i })
  | Apply { kind; pred; left; right } ->
      (* conjuncts over the left side's columns filter outer rows *)
      let lcols = Op.schema_set left in
      let to_left, stay =
        List.partition (fun c -> Col.Set.subset (Expr.cols c) lcols) conjs
      in
      reselect stay
        (Apply { kind; pred; left = push_conjuncts to_left left; right = push_select right })
  | i -> reselect conjs (Op.with_children i (List.map push_select (Op.children i)))

and reselect conjs o =
  match List.filter (fun c -> not (is_true_const c)) conjs with
  | [] -> o
  | cs -> Select (conj_list cs, o)

(* --- fixpoint driver -------------------------------------------------- *)

let cleanup (o : op) : op = Op.map_bottom_up simplify_node o

let simplify (o : op) : op =
  let o = cleanup o in
  let o = push_select o in
  cleanup o
