(** Tree cleanup and heuristic predicate pushdown — the always-beneficial
    part of query normalization (paper Section 4). *)

open Relalg.Algebra

(** Fold comparisons/connectives over constants (NULL operands are left
    alone — their 3VL behaviour is not a constant). *)
val const_fold : expr -> expr

(** Drop duplicate conjuncts modulo equality symmetry (derived
    predicates must not double-count in selectivity estimation). *)
val dedup_conjuncts : expr -> expr

(** Single-pass bottom-up cleanup: elide trivial selects/projections,
    merge stacked selects and projections, dedup conjuncts. *)
val cleanup : op -> op

(** Push filter conjuncts towards the tables they constrain (through
    projects, group-bys on grouping columns, and into the join-variant
    sides where the variant permits), then clean up. *)
val simplify : op -> op
