(** Subquery classes (paper Section 2.5), read off the normalized tree:
    no residual Apply = Class 1; residual Apply with Max1row (or a
    subquery kept lazy inside CASE) = Class 3; other residual Applies =
    Class 2. *)

open Relalg.Algebra

type cls = Class1 | Class2 | Class3 | NoSubquery

val to_string : cls -> string
val classify : had_subqueries:bool -> op -> cls

(** Does any scalar expression in the tree contain a relational child? *)
val op_has_subquery : op -> bool
