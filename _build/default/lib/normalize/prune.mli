(** Column pruning.

    Decorrelation (identities (8)/(9)) groups by ALL columns of the
    outer relation; only a key plus the referenced columns are needed.
    Walks top-down with the set of columns the context requires,
    narrowing grouping keys (a grouping column drops when the kept ones
    functionally determine it) and unreferenced aggregates/projections.
    Does not cross UnionAll/Except (positional operators). *)

open Relalg
open Relalg.Algebra

val prune : env:Props.env -> Col.Set.t -> op -> op
