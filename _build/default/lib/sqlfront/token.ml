(* SQL tokens. *)

type t =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string  (** lower-cased *)
  | KEYWORD of string  (** upper-cased, from the keyword list *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | SEMI
  | EOF

let keywords =
  [ "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER";
    "ASC"; "DESC"; "LIMIT"; "AS"; "ON"; "JOIN"; "INNER"; "LEFT"; "OUTER";
    "AND"; "OR"; "NOT"; "IS"; "NULL"; "IN"; "EXISTS"; "BETWEEN"; "LIKE";
    "ANY"; "ALL"; "SOME"; "CASE"; "WHEN"; "THEN"; "ELSE"; "END"; "UNION";
    "EXCEPT"; "DATE"; "TRUE"; "FALSE" ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let to_string = function
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "'%s'" s
  | IDENT s -> s
  | KEYWORD s -> s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | SEMI -> ";"
  | EOF -> "<eof>"
