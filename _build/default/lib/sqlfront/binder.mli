(** Name resolution and algebrization.

    Produces the "direct algebraic representation" of the paper's
    Section 2.1: an operator tree whose scalar expressions may still
    contain relational children; normalization removes those.

    Conventions (following the paper): DISTINCT becomes a no-aggregate
    GroupBy; IN (subquery) becomes =ANY and NOT IN becomes <>ALL, with
    NOT pushed through the boolean structure (3VL-sound); every
    base-table occurrence gets fresh column ids. *)

open Relalg

exception Bind_error of string

(** One FROM item's visible columns. *)
type scope_entry = { alias : string; entry_cols : (string * Col.t) list }

type scope = scope_entry list

type bound = {
  op : Algebra.op;
  outputs : (string * Col.t) list;  (** display name, column *)
  order : (Col.t * bool) list;  (** sort column, descending? *)
  limit : int option;
}

(** Bind a query under a stack of outer scopes (innermost first); names
    resolving beyond the head scope become correlations. *)
val bind_query : Catalog.t -> scope list -> Ast.query -> bound

(** Parse and bind a SQL string.
    @raise Parser.Parse_error
    @raise Bind_error *)
val bind_sql : Catalog.t -> string -> bound
