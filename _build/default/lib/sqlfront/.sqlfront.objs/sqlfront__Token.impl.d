lib/sqlfront/token.ml: List Printf String
