lib/sqlfront/binder.ml: Ast Catalog Col Format List Op Option Parser Relalg Value
