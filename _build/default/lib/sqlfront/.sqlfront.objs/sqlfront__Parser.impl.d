lib/sqlfront/parser.ml: Ast Format Lexer List Relalg Token
