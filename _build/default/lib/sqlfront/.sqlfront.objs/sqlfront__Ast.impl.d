lib/sqlfront/ast.ml: Relalg
