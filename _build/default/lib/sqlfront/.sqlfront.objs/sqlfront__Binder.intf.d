lib/sqlfront/binder.mli: Algebra Ast Catalog Col Relalg
