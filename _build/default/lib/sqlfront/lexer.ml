(* Hand-written SQL lexer. *)

exception Lex_error of string * int  (** message, position *)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : Token.t list =
  let n = String.length src in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let rec go i =
    if i >= n then emit Token.EOF
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
          (* line comment *)
          let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
          go (skip (i + 2))
      | '(' -> emit Token.LPAREN; go (i + 1)
      | ')' -> emit Token.RPAREN; go (i + 1)
      | ',' -> emit Token.COMMA; go (i + 1)
      | '.' -> emit Token.DOT; go (i + 1)
      | '*' -> emit Token.STAR; go (i + 1)
      | '+' -> emit Token.PLUS; go (i + 1)
      | '-' -> emit Token.MINUS; go (i + 1)
      | '/' -> emit Token.SLASH; go (i + 1)
      | '%' -> emit Token.PERCENT; go (i + 1)
      | ';' -> emit Token.SEMI; go (i + 1)
      | '=' -> emit Token.EQ; go (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit Token.NE; go (i + 2)
      | '<' ->
          if i + 1 < n && src.[i + 1] = '=' then (emit Token.LE; go (i + 2))
          else if i + 1 < n && src.[i + 1] = '>' then (emit Token.NE; go (i + 2))
          else (emit Token.LT; go (i + 1))
      | '>' ->
          if i + 1 < n && src.[i + 1] = '=' then (emit Token.GE; go (i + 2))
          else (emit Token.GT; go (i + 1))
      | '\'' ->
          (* string literal; '' escapes a quote *)
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then raise (Lex_error ("unterminated string", i))
            else if src.[j] = '\'' then
              if j + 1 < n && src.[j + 1] = '\'' then (
                Buffer.add_char buf '\'';
                str (j + 2))
              else j + 1
            else (
              Buffer.add_char buf src.[j];
              str (j + 1))
          in
          let j = str (i + 1) in
          emit (Token.STRING (Buffer.contents buf));
          go j
      | c when is_digit c ->
          let rec num j = if j < n && is_digit src.[j] then num (j + 1) else j in
          let j = num i in
          if j < n && src.[j] = '.' && j + 1 < n && is_digit src.[j + 1] then begin
            let k = num (j + 1) in
            emit (Token.FLOAT (float_of_string (String.sub src i (k - i))));
            go k
          end
          else begin
            emit (Token.INT (int_of_string (String.sub src i (j - i))));
            go j
          end
      | c when is_ident_start c ->
          let rec id j = if j < n && is_ident_char src.[j] then id (j + 1) else j in
          let j = id i in
          let word = String.sub src i (j - i) in
          if Token.is_keyword word then emit (Token.KEYWORD (String.uppercase_ascii word))
          else emit (Token.IDENT (String.lowercase_ascii word));
          go j
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, i))
  in
  go 0;
  List.rev !tokens
