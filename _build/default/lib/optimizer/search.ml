(* Cost-based plan search.

   The architecture follows the paper's Section 4: normalization
   produces a canonical tree, then transformation rules generate
   execution alternatives and the cheapest estimated plan wins.  The
   search is a bounded transformation closure with memoized
   deduplication — a simplification of the Volcano/Cascades engine the
   paper's system uses, preserving its essential structure (orthogonal
   local rules + cost-based choice among all derivable trees).

   Deduplication canonicalizes column ids (rules mint fresh ids on each
   firing, so textual identity would never fire). *)

open Relalg
open Relalg.Algebra

type rule = { name : string; apply : op -> op list }

let rules_for (cfg : Config.t) ~(env : Props.env) ~(cat : Catalog.t) : rule list =
  let r name f = { name; apply = (fun o -> match f o with Some t -> [ t ] | None -> []) } in
  let rmulti name f = { name; apply = f } in
  List.concat
    [ (if cfg.groupby_reorder then
         [ r "groupby-pull-above-join" (Rules.Groupby_reorder.pull_above_join ~env);
           r "groupby-push-below-join" (Rules.Groupby_reorder.push_below_join ~env);
           r "groupby-push-below-outerjoin" (Rules.Groupby_reorder.push_below_outerjoin ~env);
           r "semijoin-below-groupby" Rules.Groupby_reorder.push_semijoin_below_groupby;
           r "semijoin-above-groupby" Rules.Groupby_reorder.pull_semijoin_above_groupby;
           r "filter-below-groupby" Rules.Groupby_reorder.push_filter_below_groupby;
           r "filter-above-groupby" Rules.Groupby_reorder.pull_filter_above_groupby
         ]
       else []);
      (if cfg.local_agg then
         [ r "eager-local-aggregate" Rules.Local_agg.eager_aggregate;
           r "local-groupby-below-join" Rules.Local_agg.push_local_below_join
         ]
       else []);
      (if cfg.segment_apply then
         [ r "segment-apply-intro" Rules.Segment_apply.introduce;
           r "segment-apply-join-pushdown" Rules.Segment_apply.push_join_below
         ]
       else []);
      (if cfg.correlated_exec then
         [ r "join-to-indexed-apply" (Rules.Correlated.join_to_apply ~cat) ]
       else []);
      (if cfg.join_reorder then
         [ r "join-commute" Rules.Join_rules.commute;
           rmulti "join-associate"
             (fun o -> List.filter_map (fun x -> x) (Rules.Join_rules.associate o));
           r "filter-pullup" Rules.Join_rules.filter_pullup;
           r "project-pullup" Rules.Join_rules.project_pullup
         ]
       else [])
    ]

(* id-insensitive canonical form: renumber #ids by first occurrence in
   the printed tree *)
let canonical (o : op) : string =
  let s = Pp.to_string o in
  let buf = Buffer.create (String.length s) in
  let map = Hashtbl.create 64 in
  let next = ref 0 in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '#' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      if !j > !i + 1 then begin
        let id = String.sub s (!i + 1) (!j - !i - 1) in
        let canon =
          match Hashtbl.find_opt map id with
          | Some c -> c
          | None ->
              incr next;
              let c = string_of_int !next in
              Hashtbl.replace map id c;
              c
        in
        Buffer.add_char buf '#';
        Buffer.add_string buf canon;
        i := !j
      end
      else begin
        Buffer.add_char buf '#';
        incr i
      end
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* apply [rule] at every node of [t], producing one whole tree per
   firing position *)
let apply_everywhere (rule : rule) (t : op) : op list =
  let results = ref [] in
  let rec go (node : op) (rebuild : op -> op) =
    List.iter (fun node' -> results := rebuild node' :: !results) (rule.apply node);
    let children = Op.children node in
    List.iteri
      (fun idx child ->
        let rebuild_child c' =
          rebuild
            (Op.with_children node
               (List.mapi (fun j ch -> if j = idx then c' else ch) children))
        in
        go child rebuild_child)
      children
  in
  go t (fun x -> x);
  !results

type outcome = {
  best : op;
  best_cost : float;
  explored : int;  (** number of distinct alternatives considered *)
  seed_cost : float;
}

(* Beam-directed transformation closure: every candidate is
   cleanup-normalized (merging/eliding trivial projections, so
   syntactic debris from rule firings neither pollutes the memo nor
   hides duplicates), costed once, and only the most promising
   [beam_width] trees of each round are expanded further. *)
let beam_width = 64

let optimize ?(must = fun (_ : op) -> true) (cfg : Config.t) (stats : Stats.t)
    ~(env : Props.env) (seed : op) : outcome =
  (* [must]: restrict the final choice to plans satisfying a predicate
     (used by the benches to force one strategy of the lattice);
     exploration itself is unrestricted.  Falls back to the seed when no
     explored plan qualifies. *)
  let cat = Stats.catalog stats in
  let rules = rules_for cfg ~env ~cat in
  let seen = Hashtbl.create 128 in
  let best = ref seed in
  let best_cost = ref infinity in
  let add t =
    let t = Normalize.Simplify.cleanup t in
    let key = canonical t in
    if Hashtbl.mem seen key then None
    else begin
      Hashtbl.replace seen key ();
      let c = Cost.of_plan stats t in
      if c < !best_cost && must t then begin
        best := t;
        best_cost := c
      end;
      Some (c, t)
    end
  in
  let seed_cost =
    match add seed with Some (c, _) -> c | None -> Cost.of_plan stats seed
  in
  let frontier = ref [ (seed_cost, seed) ] in
  let round = ref 0 in
  let exception Budget_exhausted in
  (try
     while !round < cfg.max_rounds && !frontier <> [] do
       incr round;
       let next = ref [] in
       List.iter
         (fun (_, t) ->
           List.iter
             (fun rule ->
               List.iter
                 (fun t' ->
                   if Hashtbl.length seen >= cfg.max_alternatives then
                     raise Budget_exhausted;
                   match add t' with
                   | Some entry -> next := entry :: !next
                   | None -> ())
                 (apply_everywhere rule t))
             rules)
         !frontier;
       let ranked = List.sort (fun (a, _) (b, _) -> Float.compare a b) !next in
       frontier := List.filteri (fun i _ -> i < beam_width) ranked
     done
   with Budget_exhausted -> ());
  let best_cost = if !best_cost = infinity then Cost.of_plan stats seed else !best_cost in
  { best = !best; best_cost; explored = Hashtbl.length seen; seed_cost }
