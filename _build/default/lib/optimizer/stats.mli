(** Table statistics for cardinality estimation: row counts and
    per-column distinct counts (exact, computed on demand, cached). *)

type t

val create : Storage.Database.t -> t
val row_count : t -> string -> int
val ndv : t -> string -> string -> int
val catalog : t -> Catalog.t
