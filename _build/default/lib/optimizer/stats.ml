(* Table statistics for cardinality estimation: row counts and
   per-column distinct counts (exact, computed on demand and cached). *)

type t = {
  db : Storage.Database.t;
  ndv_cache : (string * string, int) Hashtbl.t;
}

let create db = { db; ndv_cache = Hashtbl.create 64 }

let row_count t table =
  match Storage.Database.table_opt t.db table with
  | Some tb -> Storage.Table.row_count tb
  | None -> 0

let ndv t table col =
  match Hashtbl.find_opt t.ndv_cache (table, col) with
  | Some n -> n
  | None ->
      let n =
        match Storage.Database.table_opt t.db table with
        | Some tb -> Storage.Table.distinct_count tb col
        | None -> 0
      in
      Hashtbl.replace t.ndv_cache (table, col) n;
      n

let catalog t = t.db.Storage.Database.catalog
