(** Cost-based plan search.

    A beam-directed transformation closure with memoized deduplication:
    a compact stand-in for the Volcano/Cascades engine of the paper's
    Section 4, preserving its architecture (orthogonal local rules +
    cost-based choice). *)

open Relalg
open Relalg.Algebra

type rule = { name : string; apply : op -> op list }

(** The rule set enabled by a configuration. *)
val rules_for : Config.t -> env:Props.env -> cat:Catalog.t -> rule list

(** Id-insensitive canonical rendering: column ids renumbered by first
    occurrence.  Two trees equal up to column identity share a
    canonical form. *)
val canonical : op -> string

(** Fire a rule at every node, returning one whole tree per firing. *)
val apply_everywhere : rule -> op -> op list

type outcome = {
  best : op;
  best_cost : float;
  explored : int;  (** number of distinct alternatives considered *)
  seed_cost : float;
}

(** Explore from [seed] and return the cheapest plan.  [must] restricts
    the final choice (not the exploration) to plans satisfying a
    predicate — benches use it to force one strategy of the paper's
    lattice; falls back to the seed if nothing qualifies. *)
val optimize :
  ?must:(op -> bool) -> Config.t -> Stats.t -> env:Props.env -> op -> outcome
