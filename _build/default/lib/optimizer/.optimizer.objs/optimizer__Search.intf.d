lib/optimizer/search.mli: Catalog Config Props Relalg Stats
