lib/optimizer/stats.ml: Hashtbl Storage
