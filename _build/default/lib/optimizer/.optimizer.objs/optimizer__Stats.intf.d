lib/optimizer/stats.mli: Catalog Storage
