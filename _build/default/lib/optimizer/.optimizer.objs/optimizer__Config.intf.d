lib/optimizer/config.mli:
