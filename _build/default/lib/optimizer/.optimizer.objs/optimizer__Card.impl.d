lib/optimizer/card.ml: Col Float Hashtbl List Op Relalg Stats Value
