lib/optimizer/cost.ml: Card Catalog Col Expr Float List Op Relalg Rules Stats
