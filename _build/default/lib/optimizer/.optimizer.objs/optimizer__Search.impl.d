lib/optimizer/search.ml: Buffer Catalog Config Cost Float Hashtbl List Normalize Op Pp Props Relalg Rules Stats String
