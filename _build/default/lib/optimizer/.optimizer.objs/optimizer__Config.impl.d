lib/optimizer/config.ml:
