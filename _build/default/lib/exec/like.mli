(** SQL LIKE pattern matching: [%] matches any sequence, [_] any single
    character.  No escape syntax. *)

val matches : pattern:string -> string -> bool
