(* SQL LIKE pattern matching: % matches any sequence, _ any single
   character.  No escape syntax (not needed by the workloads). *)

let matches ~(pattern : string) (s : string) : bool =
  let np = String.length pattern and ns = String.length s in
  (* memoized recursion over (pattern index, string index) *)
  let memo = Hashtbl.create 64 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
        let r =
          if pi = np then si = ns
          else
            match pattern.[pi] with
            | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
            | '_' -> si < ns && go (pi + 1) (si + 1)
            | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
        in
        Hashtbl.add memo (pi, si) r;
        r
  in
  go 0 0
