lib/exec/like.ml: Hashtbl String
