lib/exec/executor.ml: Array Col Expr Hashtbl Like List Op Option Printf Relalg Storage Value
