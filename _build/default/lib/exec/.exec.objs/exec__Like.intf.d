lib/exec/like.mli:
