lib/exec/executor.mli: Col Relalg Storage Value
