(** Operations over scalar expressions. *)

open Algebra

(** Fold over column references; relational children (subqueries) are
    visited through [on_op]. *)
val fold_cols :
  on_op:('acc -> op -> 'acc) -> ('acc -> Col.t -> 'acc) -> 'acc -> expr -> 'acc

(** Columns referenced directly (ignores relational children). *)
val cols : expr -> Col.Set.t

val has_subquery : expr -> bool

(** Substitute columns by expressions (does not descend into relational
    children). *)
val subst : expr Col.IdMap.t -> expr -> expr

(** The substitution defined by a projection list: output -> defining
    expression. *)
val subst_of_projs : proj list -> expr Col.IdMap.t

(** Rename columns, including inside relational children via [map_op]
    (normally {!Op.rename}). *)
val rename : map_op:(Col.t Col.IdMap.t -> op -> op) -> Col.t Col.IdMap.t -> expr -> expr

(** [strict e]: e evaluates to NULL whenever ALL of its column
    references are NULL (and it has at least one).  The paper's
    agg-on-NULLs condition: outerjoin padding nulls every inner column
    at once. *)
val strict : expr -> bool

(** Columns on which a filter predicate rejects NULL (rows with the
    column NULL cannot pass).  The basis of outerjoin
    simplification. *)
val null_rejected_cols : expr -> Col.Set.t

(** Columns c with "c NULL implies e NULL". *)
val strict_cols : expr -> Col.Set.t

val pp_cmpop : Format.formatter -> cmpop -> unit
val pp_arithop : Format.formatter -> arithop -> unit
val pp : Format.formatter -> expr -> unit
val to_string : expr -> string
