(** Runtime values for the bag-relational engine.

    SQL NULL is a first-class value.  Three-valued logic lives in
    {!cmp_sql} (which is undefined — [None] — when either side is NULL),
    while {!compare} is the total order used for hashing, sorting and
    grouping, where SQL treats NULLs as equal and smallest. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of int  (** days since 1970-01-01 *)

type ty = TInt | TFloat | TStr | TBool | TDate

val ty_name : ty -> string

(** [None] for NULL. *)
val type_of : t -> ty option

val is_null : t -> bool

(** Total order: NULL first; [Int] and [Float] compare numerically
    across representations. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Consistent with {!equal}: [Int n] and [Float (float n)] hash
    alike. *)
val hash : t -> int

(** SQL comparison: [None] (unknown) when either operand is NULL. *)
val cmp_sql : t -> t -> int option

val to_float : t -> float option

(** SQL arithmetic: NULL-strict; [Int op Int] stays integral except
    division; division by zero yields NULL. *)
val arith : [ `Add | `Sub | `Mul | `Div | `Mod ] -> t -> t -> t

(** Civil-calendar conversions (proleptic Gregorian). *)
val date_to_string : int -> string

val date_of_ymd : int -> int -> int -> int
val date_of_string : string -> int option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
