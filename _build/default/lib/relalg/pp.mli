(** Plan rendering, used by EXPLAIN and by tests asserting tree shapes
    (the paper's Figures 2, 3, 5, 6, 7). *)

open Algebra

val agg_to_string : agg -> string
val cols_to_string : Col.t list -> string

(** One-line label of a single operator. *)
val label : op -> string

(** Indented multi-line tree rendering (includes column ids). *)
val to_string : op -> string

(** Shape-only rendering without column ids or predicates, robust
    against id renumbering. *)
val shape : op -> string
