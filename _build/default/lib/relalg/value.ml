(* Runtime values for the bag-relational engine.

   SQL NULL is a first-class value; three-valued logic lives in the
   comparison helpers below ([cmp_sql] returns [None] when either side is
   NULL) while [compare] is a total order used for hashing, sorting and
   grouping (where SQL treats NULLs as equal and orders them first). *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of int  (** days since 1970-01-01 *)

type ty = TInt | TFloat | TStr | TBool | TDate

let ty_name = function
  | TInt -> "int"
  | TFloat -> "float"
  | TStr -> "string"
  | TBool -> "bool"
  | TDate -> "date"

let type_of = function
  | Null -> None
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr
  | Bool _ -> Some TBool
  | Date _ -> Some TDate

let is_null = function Null -> true | _ -> false

(* Total order: Null < Bool < Int/Float (numeric, compared by value) <
   Str < Date.  Int and Float compare numerically across the two
   representations so that mixed arithmetic results group correctly. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3
  | Date _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Date x, Date y -> Stdlib.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash (v : t) =
  match v with
  | Null -> 17
  | Bool b -> if b then 3 else 5
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s
  | Date d -> 31 * Hashtbl.hash d

(* SQL comparison: [None] when either operand is NULL (unknown). *)
let cmp_sql a b =
  match a, b with
  | Null, _ | _, Null -> None
  | _ -> Some (compare a b)

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

(* Arithmetic follows SQL: NULL-strict; integer ops stay integral,
   mixed ops promote to float.  Division by zero yields NULL rather than
   a runtime error so that speculative evaluation inside rewritten plans
   is safe (the engine never needs division errors for the paper's
   workloads). *)
let arith op a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> (
      match op with
      | `Add -> Int (x + y)
      | `Sub -> Int (x - y)
      | `Mul -> Int (x * y)
      | `Div -> if y = 0 then Null else Float (float_of_int x /. float_of_int y)
      | `Mod -> if y = 0 then Null else Int (x mod y))
  | _ -> (
      match to_float a, to_float b with
      | Some x, Some y -> (
          match op with
          | `Add -> Float (x +. y)
          | `Sub -> Float (x -. y)
          | `Mul -> Float (x *. y)
          | `Div -> if y = 0. then Null else Float (x /. y)
          | `Mod -> if y = 0. then Null else Float (Float.rem x y))
      | _ -> Null)

let date_to_string (d : int) =
  (* Civil-from-days algorithm (Howard Hinnant), valid for our range. *)
  let z = d + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let day = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  Printf.sprintf "%04d-%02d-%02d" y m day

let date_of_ymd y m day =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = if m > 2 then m - 3 else m + 9 in
  let doy = (((153 * mp) + 2) / 5) + day - 1 in
  let doe = (365 * yoe) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let date_of_string s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      try Some (date_of_ymd (int_of_string y) (int_of_string m) (int_of_string d))
      with Failure _ -> None)
  | _ -> None

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
      else Printf.sprintf "%.4f" f
  | Str s -> s
  | Bool b -> if b then "true" else "false"
  | Date d -> date_to_string d

let pp fmt v = Format.pp_print_string fmt (to_string v)
