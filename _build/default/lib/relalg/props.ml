(* Derived logical properties.

   [keys]          candidate keys of an operator's output (sets of columns);
                   identities (7)-(9) and GroupBy pull-up require them.
   [max_one_row]   proof that an expression returns at most one row per
                   invocation; lets the compiler elide Max1row (paper
                   Section 2.4: "the compiler can detect this from
                   information about keys").
   [nonnullable]   output columns that are never NULL; needed to rewrite
                   count-star into count-of-column in identity (9) and to
                   build the compensating project of Section 3.2.

   All properties are sound under-approximations. *)

open Algebra

type key = Col.Set.t

(* base-table keys are supplied by the environment (catalog); trees
   carry them in the TableScan's column list via this callback *)
type env = { table_key : string -> string list }

let default_env = { table_key = (fun _ -> []) }

let rec keys ?(env = default_env) (o : op) : key list =
  let keys = keys ~env in
  match o with
  | TableScan { table; cols } -> (
      let names = env.table_key table in
      match names with
      | [] -> []
      | _ ->
          let find n = List.find_opt (fun c -> c.Col.name = n) cols in
          let cs = List.filter_map find names in
          if List.length cs = List.length names then [ Col.Set.of_list cs ] else [])
  | ConstTable { rows; cols } ->
      if List.length rows <= 1 then [ Col.Set.of_list cols ] else []
  | SegmentHole _ -> []
  | Select (_, i) | Max1row i -> keys i
  | Project (projs, i) ->
      (* a key survives projection if every key column is passed through *)
      let passed =
        List.filter_map
          (fun p -> match p.expr with ColRef c -> Some (c, p.out) | _ -> None)
          projs
      in
      let translate k =
        let rec go acc = function
          | [] -> Some acc
          | c :: rest -> (
              match List.find_opt (fun (src, _) -> Col.equal src c) passed with
              | Some (_, out) -> go (Col.Set.add out acc) rest
              | None -> None)
        in
        go Col.Set.empty (Col.Set.elements k)
      in
      List.filter_map translate (keys i)
  | Join { kind; left; right; _ } | Apply { kind; left; right; _ } -> (
      match kind with
      | Semi | Anti -> keys left
      | Inner | LeftOuter ->
          (* key(l) x key(r) is a key of the combined output *)
          List.concat_map
            (fun kl -> List.map (fun kr -> Col.Set.union kl kr) (keys right))
            (keys left))
  | SegmentApply { outer; inner; _ } ->
      List.concat_map
        (fun kl -> List.map (fun kr -> Col.Set.union kl kr) (keys inner))
        (keys outer)
  | GroupBy { keys = gk; _ } | LocalGroupBy { keys = gk; _ } ->
      (* the grouping columns are a key of the (global) GroupBy output;
         NOT of a LocalGroupBy pushed below with extended columns — but
         for LocalGroupBy the grouping cols are still a key of its own
         output since it emits one row per distinct grouping value *)
      [ Col.Set.of_list gk ]
  | ScalarAgg { aggs; _ } -> [ Col.Set.of_list (List.map (fun (a : agg) -> a.out) aggs) ]
  | UnionAll _ -> []
  | Except (l, _) -> keys l
  | Rownum { out; _ } -> [ Col.Set.singleton out ]

let has_key ?env o = keys ?env o <> []

(* Is [cols] a superset of some key of [o]? *)
let covers_key ?env (o : op) (cols : Col.Set.t) =
  List.exists (fun k -> Col.Set.subset k cols) (keys ?env o)

(* ------------------------------------------------------------------ *)

(* Functional-dependency closure of a column set within an operator
   tree: base-table keys determine all columns of the same scan, and
   grouping columns determine aggregate outputs.  Used by column
   pruning to drop grouping columns that are determined by the kept
   ones. *)
let fd_closure ?(env = default_env) (o : op) (seed : Col.Set.t) : Col.Set.t =
  (* collect (determinant, determined) pairs *)
  let deps = ref [] in
  let rec walk o =
    (match o with
    | TableScan { table; cols } -> (
        let names = env.table_key table in
        let find n = List.find_opt (fun c -> c.Col.name = n) cols in
        match List.filter_map find names with
        | [] -> ()
        | key when List.length key = List.length names && names <> [] ->
            deps := (Col.Set.of_list key, Col.Set.of_list cols) :: !deps
        | _ -> ())
    | GroupBy { keys; aggs; _ } | LocalGroupBy { keys; aggs; _ } ->
        deps :=
          (Col.Set.of_list keys, Col.Set.of_list (List.map (fun (a : agg) -> a.out) aggs))
          :: !deps
    | Project (projs, _) ->
        List.iter
          (fun p ->
            match p.expr with
            | ColRef c -> deps := (Col.Set.singleton c, Col.Set.singleton p.out) :: !deps
            | _ -> ())
          projs
    | _ -> ());
    List.iter walk (Op.children o)
  in
  walk o;
  let rec fix s =
    let s' =
      List.fold_left
        (fun acc (det, dep) -> if Col.Set.subset det acc then Col.Set.union acc dep else acc)
        s !deps
    in
    if Col.Set.equal s s' then s else fix s'
  in
  fix seed

let rec max_one_row ?(env = default_env) (o : op) : bool =
  let m1 = max_one_row ~env in
  match o with
  | ScalarAgg _ | Max1row _ -> true
  | ConstTable { rows; _ } -> List.length rows <= 1
  | Select (p, i) ->
      m1 i
      ||
      (* equality on a full key with values constant w.r.t. the input
         (outer references or literals) pins at most one row *)
      let eq_cols =
        List.fold_left
          (fun acc c ->
            match c with
            | Cmp (Eq, ColRef col, rhs) when Col.Set.is_empty (Col.Set.inter (Expr.cols rhs) (Op.schema_set i)) ->
                Col.Set.add col acc
            | Cmp (Eq, lhs, ColRef col) when Col.Set.is_empty (Col.Set.inter (Expr.cols lhs) (Op.schema_set i)) ->
                Col.Set.add col acc
            | _ -> acc)
          Col.Set.empty (conjuncts p)
      in
      covers_key ~env i eq_cols
  | Project (_, i) | Rownum { input = i; _ } -> m1 i
  | GroupBy { input; _ } | LocalGroupBy { input; _ } -> m1 input
  | Join { kind = Semi | Anti; left; _ } | Apply { kind = Semi | Anti; left; _ } ->
      m1 left
  | Join { left; right; _ } -> m1 left && m1 right
  | Apply { left; right; _ } -> m1 left && m1 right
  | SegmentApply _ | UnionAll _ | TableScan _ | SegmentHole _ -> false
  | Except (l, _) -> m1 l

(* ------------------------------------------------------------------ *)

(* Output columns guaranteed non-NULL.  Base-table columns are all
   non-nullable in this engine (matching TPC-H); NULLs are introduced
   only by outerjoins, aggregates and scalar expressions. *)
let rec nonnullable (o : op) : Col.Set.t =
  match o with
  | TableScan { cols; _ } -> Col.Set.of_list cols
  | ConstTable { cols; rows } ->
      List.fold_left
        (fun acc (i, c) ->
          if List.for_all (fun r -> not (Value.is_null r.(i))) rows then
            Col.Set.add c acc
          else acc)
        Col.Set.empty
        (List.mapi (fun i c -> (i, c)) cols)
  | SegmentHole { cols; _ } -> Col.Set.of_list cols
  | Select (_, i) | Max1row i -> nonnullable i
  | Project (projs, i) ->
      let below = nonnullable i in
      List.fold_left
        (fun acc p ->
          match p.expr with
          | ColRef c when Col.Set.mem c below -> Col.Set.add p.out acc
          | Const v when not (Value.is_null v) -> Col.Set.add p.out acc
          | _ -> acc)
        Col.Set.empty projs
  | Join { kind; left; right; _ } | Apply { kind; left; right; _ } -> (
      match kind with
      | Semi | Anti -> nonnullable left
      | Inner -> Col.Set.union (nonnullable left) (nonnullable right)
      | LeftOuter -> nonnullable left)
  | SegmentApply { outer; inner; _ } ->
      Col.Set.union (nonnullable outer) (nonnullable inner)
  | GroupBy { keys; aggs; input } | LocalGroupBy { keys; aggs; input } ->
      let below = nonnullable input in
      let keys_nn = List.filter (fun c -> Col.Set.mem c below) keys in
      let aggs_nn =
        List.filter_map
          (fun a ->
            match a.fn with
            | CountStar | Count _ -> Some a.out
            | Sum e | Min e | Max e | Avg e -> (
                (* non-null if the input expression is a non-nullable
                   column (groups are non-empty in vector aggregation) *)
                match e with
                | ColRef c when Col.Set.mem c below -> Some a.out
                | Const v when not (Value.is_null v) -> Some a.out
                | _ -> None))
          aggs
      in
      Col.Set.union (Col.Set.of_list keys_nn) (Col.Set.of_list aggs_nn)
  | ScalarAgg { aggs; _ } ->
      (* scalar aggregation over a possibly-empty input: only counts are
         guaranteed non-null *)
      List.fold_left
        (fun acc a ->
          match a.fn with CountStar | Count _ -> Col.Set.add a.out acc | _ -> acc)
        Col.Set.empty aggs
  | UnionAll (l, r) -> Col.Set.inter (nonnullable l) (nonnullable r)
  | Except (l, _) -> nonnullable l
  | Rownum { out; input } -> Col.Set.add out (nonnullable input)
