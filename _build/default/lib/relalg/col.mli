(** Column identities.

    Every column produced anywhere in a query carries a globally unique
    integer id, assigned at creation (bind time for base-table
    occurrences, rewrite time for manufactured columns).  Rewrites
    reference columns only through ids, making the decorrelation
    identities immune to name capture: two scans of the same table have
    disjoint ids, and cloning a subtree re-instantiates ids through an
    explicit substitution. *)

type t = { id : int; name : string; ty : Value.ty }

(** Reset the global id counter — tests only, so expected plans print
    with stable ids. *)
val reset_counter : unit -> unit

val fresh : string -> Value.ty -> t

(** Same name and type, fresh id. *)
val clone : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Stdlib.Set.S with type elt = t
module Map : Stdlib.Map.S with type key = t

(** Maps keyed by the integer column id. *)
module IdMap : Stdlib.Map.S with type key = int

val set_of_list : t list -> Set.t
val names_of : Set.t -> string list
