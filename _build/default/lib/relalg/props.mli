(** Derived logical properties — sound under-approximations.

    These drive the paper's preconditions: identities (7)-(9) need keys,
    identity (9) and the Section 3.2 compensation need non-nullability,
    Max1row elision needs cardinality bounds, and column pruning needs
    functional dependencies. *)

open Algebra

type key = Col.Set.t

(** Base-table keys come from the environment (catalog). *)
type env = { table_key : string -> string list }

val default_env : env

(** Candidate keys of the operator's output. *)
val keys : ?env:env -> op -> key list

val has_key : ?env:env -> op -> bool

(** Is [cols] a superset of some key of the output? *)
val covers_key : ?env:env -> op -> Col.Set.t -> bool

(** Functional-dependency closure of a column set within the tree:
    base-table keys determine all columns of their scan, grouping
    columns determine aggregate outputs, pass-through projections
    propagate. *)
val fd_closure : ?env:env -> op -> Col.Set.t -> Col.Set.t

(** Provably at most one output row per invocation (the paper's
    "compiler can detect this from information about keys", used to
    elide Max1row). *)
val max_one_row : ?env:env -> op -> bool

(** Output columns guaranteed non-NULL. *)
val nonnullable : op -> Col.Set.t
