lib/relalg/op.ml: Algebra Array Col Expr List Value
