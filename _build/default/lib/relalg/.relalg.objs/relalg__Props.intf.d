lib/relalg/props.mli: Algebra Col
