lib/relalg/pp.ml: Algebra Buffer Col Expr Format List Op Printf String
