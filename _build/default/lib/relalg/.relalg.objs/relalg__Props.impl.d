lib/relalg/props.ml: Algebra Array Col Expr List Op Value
