lib/relalg/col.mli: Format Stdlib Value
