lib/relalg/expr.ml: Algebra Col Format List Option Value
