lib/relalg/value.ml: Float Format Hashtbl Printf Stdlib String
