lib/relalg/expr.mli: Algebra Col Format
