lib/relalg/pp.mli: Algebra Col
