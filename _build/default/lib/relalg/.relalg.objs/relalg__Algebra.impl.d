lib/relalg/algebra.ml: Col List Value
