lib/relalg/op.mli: Algebra Col
