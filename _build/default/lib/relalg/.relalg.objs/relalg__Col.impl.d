lib/relalg/col.ml: Format Int List Map Set Stdlib Value
