(* Operations over scalar expressions. *)

open Algebra

(* Fold over the column references of an expression.  Subquery children
   are visited through [on_op], so callers decide whether relational
   children count (free-variable analysis does; local analyses don't). *)
let rec fold_cols ~on_op f acc e =
  match e with
  | ColRef c -> f acc c
  | Const _ -> acc
  | Arith (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      fold_cols ~on_op f (fold_cols ~on_op f acc a) b
  | Not a | IsNull a | Like (a, _) -> fold_cols ~on_op f acc a
  | Case (branches, els) ->
      let acc =
        List.fold_left
          (fun acc (c, v) -> fold_cols ~on_op f (fold_cols ~on_op f acc c) v)
          acc branches
      in
      (match els with Some e -> fold_cols ~on_op f acc e | None -> acc)
  | Subquery q | Exists q -> on_op acc q
  | InSub (a, q) -> on_op (fold_cols ~on_op f acc a) q
  | QuantCmp (_, _, a, q) -> on_op (fold_cols ~on_op f acc a) q

(* Columns referenced directly by [e], ignoring relational children. *)
let cols e = fold_cols ~on_op:(fun acc _ -> acc) (fun s c -> Col.Set.add c s) Col.Set.empty e

let has_subquery e =
  let exception Found in
  try
    ignore (fold_cols ~on_op:(fun _ _ -> raise Found) (fun () _ -> ()) () e);
    false
  with Found -> true

(* Substitute columns by expressions.  Does not descend into relational
   children: subquery bodies resolve their own columns (outer references
   into the substituted scope are handled by the Apply machinery before
   any substitution happens). *)
let rec subst (m : expr Col.IdMap.t) e =
  match e with
  | ColRef c -> ( match Col.IdMap.find_opt c.id m with Some e' -> e' | None -> e)
  | Const _ -> e
  | Arith (o, a, b) -> Arith (o, subst m a, subst m b)
  | Cmp (o, a, b) -> Cmp (o, subst m a, subst m b)
  | And (a, b) -> And (subst m a, subst m b)
  | Or (a, b) -> Or (subst m a, subst m b)
  | Not a -> Not (subst m a)
  | IsNull a -> IsNull (subst m a)
  | Like (a, pat) -> Like (subst m a, pat)
  | Case (branches, els) ->
      Case
        ( List.map (fun (c, v) -> (subst m c, subst m v)) branches,
          Option.map (subst m) els )
  | Subquery _ | Exists _ | InSub _ | QuantCmp _ -> e

let subst_of_projs (projs : proj list) =
  List.fold_left (fun m p -> Col.IdMap.add p.out.id p.expr m) Col.IdMap.empty projs

(* Rename columns (column -> column), including inside relational
   children via [map_op] supplied by the caller (Op.rename needs this). *)
let rec rename ~map_op (m : Col.t Col.IdMap.t) e =
  let r = rename ~map_op m in
  match e with
  | ColRef c -> ( match Col.IdMap.find_opt c.id m with Some c' -> ColRef c' | None -> e)
  | Const _ -> e
  | Arith (o, a, b) -> Arith (o, r a, r b)
  | Cmp (o, a, b) -> Cmp (o, r a, r b)
  | And (a, b) -> And (r a, r b)
  | Or (a, b) -> Or (r a, r b)
  | Not a -> Not (r a)
  | IsNull a -> IsNull (r a)
  | Like (a, pat) -> Like (r a, pat)
  | Case (branches, els) ->
      Case (List.map (fun (c, v) -> (r c, r v)) branches, Option.map r els)
  | Subquery q -> Subquery (map_op m q)
  | Exists q -> Exists (map_op m q)
  | InSub (a, q) -> InSub (r a, map_op m q)
  | QuantCmp (o, qu, a, q) -> QuantCmp (o, qu, r a, map_op m q)

(* An expression is strict when it evaluates to NULL whenever ALL of
   its column references are NULL (and it references at least one
   column).  This is the property needed to pull a projection above the
   NULL-padded side of an outerjoin, and the paper's agg-on-NULLs
   condition of Sections 2.3/3.2: the padding nulls every inner column
   at once.  Arithmetic and comparisons propagate NULL from either
   operand, so one strict operand suffices; AND/OR need both (3VL:
   NULL AND FALSE = FALSE). *)
let rec strict = function
  | ColRef _ -> true
  | Const _ -> false
  | Arith (_, a, b) -> strict a || strict b
  | Cmp (_, a, b) -> strict a || strict b
  | And (a, b) | Or (a, b) -> strict a && strict b
  | Not a -> strict a
  | Like (a, _) -> strict a
  | IsNull _ -> false
  | Case _ -> false
  | Subquery _ | Exists _ | InSub _ | QuantCmp _ -> false

(* Does predicate [p], used as a filter, reject rows in which column [c]
   is NULL?  Sound under-approximation; the basis of outerjoin
   simplification (Galindo-Legaria & Rosenthal, used in Section 1.2). *)
let rec null_rejected_cols (p : expr) : Col.Set.t =
  match p with
  | Cmp (_, a, b) ->
      (* unknown comparison filters the row; strict operands propagate *)
      Col.Set.union (strict_cols a) (strict_cols b)
  | And (a, b) -> Col.Set.union (null_rejected_cols a) (null_rejected_cols b)
  | Or (a, b) -> Col.Set.inter (null_rejected_cols a) (null_rejected_cols b)
  | Not (IsNull e) -> strict_cols e
  | Not _ -> Col.Set.empty
  | ColRef c -> Col.Set.singleton c (* boolean column used as predicate *)
  | _ -> Col.Set.empty

(* Columns c such that "c is NULL implies e is NULL". *)
and strict_cols (e : expr) : Col.Set.t =
  match e with
  | ColRef c -> Col.Set.singleton c
  | Arith (_, a, b) | Cmp (_, a, b) -> Col.Set.union (strict_cols a) (strict_cols b)
  | Not a | Like (a, _) -> strict_cols a
  | _ -> Col.Set.empty

let pp_cmpop fmt o =
  Format.pp_print_string fmt
    (match o with Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")

let pp_arithop fmt o =
  Format.pp_print_string fmt
    (match o with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%")

let rec pp fmt e =
  match e with
  | ColRef c -> Col.pp fmt c
  | Const v -> Value.pp fmt v
  | Arith (o, a, b) -> Format.fprintf fmt "(%a %a %a)" pp a pp_arithop o pp b
  | Cmp (o, a, b) -> Format.fprintf fmt "(%a %a %a)" pp a pp_cmpop o pp b
  | And (a, b) -> Format.fprintf fmt "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf fmt "NOT %a" pp a
  | IsNull a -> Format.fprintf fmt "%a IS NULL" pp a
  | Like (a, pat) -> Format.fprintf fmt "%a LIKE '%s'" pp a pat
  | Case (branches, els) ->
      Format.fprintf fmt "CASE";
      List.iter (fun (c, v) -> Format.fprintf fmt " WHEN %a THEN %a" pp c pp v) branches;
      (match els with Some e -> Format.fprintf fmt " ELSE %a" pp e | None -> ());
      Format.fprintf fmt " END"
  | Subquery _ -> Format.fprintf fmt "SUBQUERY(...)"
  | Exists _ -> Format.fprintf fmt "EXISTS(...)"
  | InSub (a, _) -> Format.fprintf fmt "%a IN (...)" pp a
  | QuantCmp (o, q, a, _) ->
      Format.fprintf fmt "%a %a %s (...)" pp a pp_cmpop o
        (match q with Any -> "ANY" | All -> "ALL")

let to_string e = Format.asprintf "%a" pp e
