(** Operations over relational operator trees. *)

open Algebra

(** Output schema: the ordered list of columns the operator produces.
    Join/Apply with [Semi]/[Anti] keep the left schema only;
    [SegmentApply] produces outer ++ inner. *)
val schema : op -> Col.t list

val schema_set : op -> Col.Set.t

(** Relational children, left to right. *)
val children : op -> op list

(** Rebuild an operator with new children (same arity).
    @raise Invalid_argument on arity mismatch. *)
val with_children : op -> op list -> op

(** The scalar expressions attached directly to the operator (not those
    of its children): select/join/apply predicates, projections,
    aggregate arguments. *)
val local_exprs : op -> expr list

(** Free (outer) references: columns used by the subtree but not
    produced by it — the paper's correlation.  Scalar subquery children
    contribute their own free references. *)
val free_cols : op -> Col.Set.t

(** [correlated_with inner left]: does [inner] reference columns
    produced by [left]?  The test of identities (1)/(2). *)
val correlated_with : op -> op -> bool

val uses_cols : op -> Col.Set.t -> bool

(** Rename columns throughout the tree (produced and referenced). *)
val rename : Col.t Col.IdMap.t -> op -> op

(** Deep copy with fresh ids for every column produced inside the
    subtree; free references are untouched.  Returns the mapping
    old-column-id -> fresh column.  Needed by the identities that
    duplicate a subexpression — (5), (6), (7) — and by SegmentApply
    introduction. *)
val clone_fresh : op -> op * Col.t Col.IdMap.t

(** Structural isomorphism up to column renaming; on success returns
    the column bijection (first tree's columns -> second's).  Used by
    SegmentApply introduction (paper Section 3.4.1) to detect two
    instances of the same expression. *)
val iso : op -> op -> Col.t Col.IdMap.t option

val map_bottom_up : (op -> op) -> op -> op
val exists_op : (op -> bool) -> op -> bool
val count_ops : op -> int
