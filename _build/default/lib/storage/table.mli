(** In-memory row store.

    A table is an array of rows (value arrays, positionally matching
    the catalog column order) plus optional single-column hash indexes —
    enough for the index-lookup-join execution alternative of the
    paper's Section 4. *)

type index = {
  idx_col : int;  (** column position *)
  idx_map : (Relalg.Value.t, int list) Hashtbl.t;
}

type t = {
  def : Catalog.table;
  mutable rows : Relalg.Value.t array array;
  mutable indexes : index list;
  col_pos : (string, int) Hashtbl.t;
}

val create : Catalog.table -> t
val name : t -> string
val row_count : t -> int
val column_position : t -> string -> int option

(** Replace the table contents (drops indexes). *)
val load : t -> Relalg.Value.t array list -> unit

val append : t -> Relalg.Value.t array -> unit

(** Build a hash index on one column.
    @raise Invalid_argument for unknown columns. *)
val build_index : t -> string -> unit

val find_index : t -> string -> index option
val index_lookup : index -> t -> Relalg.Value.t -> Relalg.Value.t array list

(** Exact distinct count of a column (cached by Optimizer.Stats). *)
val distinct_count : t -> string -> int
