lib/storage/table.mli: Catalog Hashtbl Relalg
