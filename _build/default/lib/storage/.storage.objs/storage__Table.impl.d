lib/storage/table.ml: Array Catalog Hashtbl List Relalg
