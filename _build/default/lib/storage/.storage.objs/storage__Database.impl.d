lib/storage/database.ml: Catalog Hashtbl List Table
