lib/storage/database.mli: Catalog Hashtbl Table
