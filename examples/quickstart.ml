(* Quickstart: build a schema, load rows, run SQL — the five-minute tour
   of the public API.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. declare a catalog *)
  let open Relalg.Value in
  let cat = Catalog.create () in
  Catalog.add_table cat
    { name = "books";
      columns =
        [ Catalog.col "id" TInt;
          Catalog.col "title" TStr;
          Catalog.col "author_id" TInt;
          Catalog.col "price" TFloat
        ];
      primary_key = [ "id" ];
      indexes = [ [ "author_id" ] ]
    };
  Catalog.add_table cat
    { name = "authors";
      columns = [ Catalog.col "aid" TInt; Catalog.col "name" TStr ];
      primary_key = [ "aid" ];
      indexes = []
    };

  (* 2. load data *)
  let db = Storage.Database.create cat in
  Storage.Table.load
    (Storage.Database.table db "books")
    [ [| Int 1; Str "A Relational Model"; Int 1; Float 35.0 |];
      [| Int 2; Str "The Complete Book"; Int 2; Float 89.0 |];
      [| Int 3; Str "Access Path Selection"; Int 3; Float 15.0 |];
      [| Int 4; Str "Of Nests and Trees"; Int 3; Float 25.0 |]
    ];
  Storage.Table.load
    (Storage.Database.table db "authors")
    [ [| Int 1; Str "Codd" |]; [| Int 2; Str "Garcia-Molina" |]; [| Int 3; Str "Selinger" |] ];
  Storage.Database.build_declared_indexes db;

  (* 3. query away — subqueries welcome, they will be flattened *)
  let eng = Engine.create db in
  let show sql =
    Printf.printf "\nsql> %s\n%s\n" sql (Engine.format_result (Engine.query eng sql))
  in
  show "select title, price from books where price > 20 order by price desc";
  show
    "select name from authors where 30 < (select sum(price) from books where author_id = aid)";
  show
    "select name, (select count(*) from books where author_id = aid) as n_books \
     from authors order by name";
  show "select title from books where author_id in (select aid from authors where name like 'S%')";

  (* 4. look at what the optimizer did *)
  print_endline "\nEXPLAIN of the correlated-subquery query:";
  print_endline
    (Engine.explain eng
       "select name from authors where 30 < (select sum(price) from books where author_id = aid)")
