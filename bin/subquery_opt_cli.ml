(* Command-line interface: load a TPC-H database at a scale factor and
   run SQL against it, with plan inspection.

   Examples:
     subquery_opt run --sf 0.01 "select count(*) from orders"
     subquery_opt explain --sf 0.01 --stages \
       "select c_custkey from customer where 1000 < (select sum(o_totalprice) \
        from orders where o_custkey = c_custkey)"
     subquery_opt repl --sf 0.01 --level correlated
*)

open Cmdliner

let level_conv =
  let parse = function
    | "correlated" -> Ok Optimizer.Config.correlated_only
    | "decorrelated" -> Ok Optimizer.Config.decorrelated_only
    | "full" -> Ok Optimizer.Config.full
    | s -> Error (`Msg ("unknown optimizer level: " ^ s))
  in
  let print fmtr c = Format.pp_print_string fmtr (Optimizer.Config.name_of c) in
  Arg.conv (parse, print)

let sf_arg =
  let doc = "TPC-H scale factor for the generated database." in
  Arg.(value & opt float 0.01 & info [ "sf" ] ~docv:"SF" ~doc)

let seed_arg =
  let doc = "Data generator seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let level_arg =
  let doc =
    "Optimizer level: correlated (execute subqueries as written), decorrelated \
     (flattening + outerjoin simplification), or full (all techniques)."
  in
  Arg.(value & opt level_conv Optimizer.Config.full & info [ "level" ] ~docv:"LEVEL" ~doc)

let sql_arg =
  let doc = "The SQL query." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)

let exec_mode_conv =
  let parse = function
    | "row" -> Ok `Row
    | "vector" -> Ok `Vector
    | s -> Error (`Msg ("unknown exec mode: " ^ s))
  in
  let print fmtr m = Format.pp_print_string fmtr (Engine.exec_mode_name m) in
  Arg.conv (parse, print)

let exec_mode_arg =
  let doc =
    "Execution engine: row (tuple-at-a-time interpreter, the semantic oracle) or \
     vector (batch-at-a-time columnar executor; subtrees it does not cover run on \
     the row interpreter behind a bridge)."
  in
  Arg.(value & opt exec_mode_conv `Row & info [ "exec-mode" ] ~docv:"MODE" ~doc)

(* --- resource budgets and fault injection --------------------------- *)

let timeout_arg =
  let doc = "Wall-clock budget in seconds; the query is cancelled when it trips." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS" ~doc)

let max_rows_arg =
  let doc = "Budget on rows processed by executor operators." in
  Arg.(value & opt (some int) None & info [ "max-rows" ] ~docv:"N" ~doc)

let max_apply_arg =
  let doc = "Budget on Apply invocations (correlated work)." in
  Arg.(value & opt (some int) None & info [ "max-apply" ] ~docv:"N" ~doc)

let budget_of timeout max_rows max_apply =
  let b = Exec.Budget.make ?max_rows ?max_apply ?timeout_s:timeout () in
  if Exec.Budget.is_unlimited b then None else Some b

let fault_conv =
  let parse s =
    match Exec.Faults.parse s with Ok spec -> Ok spec | Error m -> Error (`Msg m)
  in
  let print fmtr s = Format.pp_print_string fmtr (Exec.Faults.spec_to_string s) in
  Arg.conv (parse, print)

let fault_arg =
  let doc =
    "Inject executor faults, e.g. join:nth:3 (fail the 3rd join evaluation), \
     any:p:0.01:seed:7 (1% per-operator failure, seeded), groupby:every:10."
  in
  Arg.(value & opt (some fault_conv) None & info [ "fault" ] ~docv:"SPEC" ~doc)

let resilient_arg =
  let doc =
    "On a recoverable failure (runtime error, budget trip, injected fault), retry \
     the query on the correlated-execution fallback plan."
  in
  Arg.(value & flag & info [ "resilient" ] ~doc)

let with_engine sf seed f =
  Printf.eprintf "loading TPC-H at SF %.3f (seed %d)...\n%!" sf seed;
  let db = Datagen.Tpch_gen.database ~seed ~sf () in
  f (Engine.create db)

(* Typed-diagnostic wrapper: pipeline failures print structured errors
   and exit 1 instead of dumping a raw OCaml exception. *)
let or_die sql f =
  match Engine.Errors.protect ~sql f with
  | Ok v -> v
  | Error e ->
      Printf.eprintf "%s\n%!" (Engine.Errors.to_string e);
      exit 1

let no_cache_arg =
  let doc = "Disable the plan/CSE caching tier (on by default for this command)." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let run_cmd =
  let action sf seed config mode timeout max_rows max_apply fault resilient no_cache sql =
    with_engine sf seed (fun eng ->
        if not no_cache then Engine.enable_cache eng;
        let budget = budget_of timeout max_rows max_apply in
        let faults = Option.map Exec.Faults.create fault in
        or_die sql (fun () ->
            if resilient then begin
              let r = Engine.query_resilient ~config ?budget ?faults eng sql in
              print_endline (Engine.format_result r.execution.result);
              (match r.primary_error with
              | Some err ->
                  Printf.printf "\ndegraded: primary plan failed (%s); served by %s\n"
                    (Engine.Errors.to_string err) r.served_by
              | None -> Printf.printf "\nserved by %s\n" r.served_by);
              Printf.printf "elapsed: %.3fs\n" r.execution.elapsed_s
            end
            else begin
              let p = Engine.prepare ~config eng sql in
              let e = Engine.execute ?budget ?faults ~mode eng p in
              print_endline (Engine.format_result e.result);
              let source =
                match p.Engine.cache with
                | Some `Hit -> "   plan: cached"
                | Some (`Miss | `Stale) | None -> ""
              in
              Printf.printf "\nelapsed: %.3fs   plan cost: %.0f   alternatives: %d%s\n"
                e.elapsed_s p.plan_cost p.explored source
            end))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a SQL query and print the result.")
    Term.(
      const action $ sf_arg $ seed_arg $ level_arg $ exec_mode_arg $ timeout_arg
      $ max_rows_arg $ max_apply_arg $ fault_arg $ resilient_arg $ no_cache_arg $ sql_arg)

let fuzz_seed_arg =
  let doc =
    "Check the generated fuzz query with this generator seed instead of a SQL \
     argument (replay a fuzz failure; combine with --case)."
  in
  Arg.(value & opt (some int) None & info [ "fuzz-seed" ] ~docv:"SEED" ~doc)

let case_arg =
  let doc = "Fuzz case number within the seed's stream." in
  Arg.(value & opt int 0 & info [ "case" ] ~docv:"N" ~doc)

let float_digits_arg =
  let doc =
    "Round floats to $(docv) significant digits before comparing result bags \
     (plans that join in a different order sum floats in a different order).  \
     Defaults to exact comparison, or to 6 when replaying with --fuzz-seed."
  in
  Arg.(value & opt (some int) None & info [ "float-digits" ] ~docv:"N" ~doc)

let check_cmd =
  let sql_opt_arg =
    let doc = "The SQL query to check; omit to check the built-in TPC-H workloads." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)
  in
  let action sf seed config mode timeout max_rows max_apply fuzz_seed case float_digits
      sql =
    with_engine sf seed (fun eng ->
        let budget = budget_of timeout max_rows max_apply in
        let queries =
          match (fuzz_seed, sql) with
          | Some fs, _ ->
              [ (Printf.sprintf "fuzz %d:%d" fs case, Testgen.Qgen.sql_of ~seed:fs ~case) ]
          | None, Some sql -> [ ("query", sql) ]
          | None, None -> Workloads.all_named
        in
        let float_digits =
          match (float_digits, fuzz_seed) with
          | (Some _ as d), _ -> d
          | None, Some _ -> Some Testgen.Fuzz.float_digits
          | None, None -> None
        in
        let failed = ref 0 in
        List.iter
          (fun (name, sql) ->
            let report =
              or_die sql (fun () ->
                  Engine.check ~candidate:config ~mode ?budget ?float_digits eng sql)
            in
            if not report.Engine.agree then incr failed;
            Printf.printf "%-14s %s" name (Engine.format_check_report report))
          queries;
        if !failed > 0 then begin
          Printf.eprintf "%d of %d checks FAILED\n%!" !failed (List.length queries);
          exit 1
        end)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Differential check: run the query under the chosen level and under \
          correlated execution (the semantic oracle) and compare result bags.  With \
          --exec-mode vector, the candidate side runs on the columnar executor, \
          making this the row-vs-vector differential harness.")
    Term.(
      const action $ sf_arg $ seed_arg $ level_arg $ exec_mode_arg $ timeout_arg
      $ max_rows_arg $ max_apply_arg $ fuzz_seed_arg $ case_arg $ float_digits_arg
      $ sql_opt_arg)

let lint_cmd =
  let sql_opt_arg =
    let doc = "The SQL query to lint; omit to sweep the built-in TPC-H workloads." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)
  in
  let strict_arg =
    let doc = "Exit non-zero on WARNING findings too, not just ERROR." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let action sf seed config strict sql =
    with_engine sf seed (fun eng ->
        let queries =
          match sql with Some s -> [ ("query", s) ] | None -> Workloads.all_named
        in
        let errors = ref 0 and warnings = ref 0 in
        List.iter
          (fun (name, sql) ->
            let p = or_die sql (fun () -> Engine.prepare ~config eng sql) in
            List.iter
              (fun (f : Analysis.Lint.finding) ->
                match f.severity with
                | Analysis.Lint.Error -> incr errors
                | Analysis.Lint.Warning -> incr warnings
                | Analysis.Lint.Info -> ())
              p.Engine.lint;
            Printf.printf "%-14s %s\n" name (Analysis.Lint.summary p.Engine.lint);
            List.iter
              (fun f -> Printf.printf "  %s\n" (Analysis.Lint.finding_to_string f))
              p.Engine.lint)
          queries;
        if !errors > 0 || (strict && !warnings > 0) then begin
          Printf.eprintf "lint: %d error(s), %d warning(s)\n%!" !errors !warnings;
          exit 1
        end)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze optimized plans: residual correlation, simplifiable \
          outerjoins, redundant grouping, contradictory or tautological predicates, \
          dead columns, cross-type comparisons.  Without SQL, sweeps the built-in \
          TPC-H workloads; exits non-zero on any ERROR finding.")
    Term.(const action $ sf_arg $ seed_arg $ level_arg $ strict_arg $ sql_opt_arg)

let fuzz_cmd =
  let seeds_arg =
    let doc = "Generator seeds to sweep (one stream of cases per seed)." in
    Arg.(value & pos_all int [ 1; 2; 3; 4; 5 ] & info [] ~docv:"SEED" ~doc)
  in
  let cases_arg =
    let doc = "Cases to generate per seed." in
    Arg.(value & opt int 100 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let replay_arg =
    let doc = "Replay a single case number instead of sweeping (use one SEED)." in
    Arg.(value & opt (some int) None & info [ "case" ] ~docv:"N" ~doc)
  in
  let verbose_arg =
    let doc = "Print every case, not just failures." in
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc)
  in
  let cache_arg =
    let doc =
      "Check the caching tier instead: every case runs cold and then warm with \
       perturbed literals against a cache-enabled engine, each bag-compared to a \
       fresh uncached optimization of the same SQL."
    in
    Arg.(value & flag & info [ "cache" ] ~doc)
  in
  let action sf seed mode cases replay verbose cache timeout max_rows max_apply fault
      seeds =
    with_engine sf seed (fun eng ->
        let budget = budget_of timeout max_rows max_apply in
        let failures = ref 0 in
        List.iter
          (fun fuzz_seed ->
            let cfg =
              { (Testgen.Fuzz.default_config ~seed:fuzz_seed ~cases) with
                Testgen.Fuzz.only_case = replay;
                budget;
                fault;
                exec_mode = mode;
                cache;
              }
            in
            let summary =
              Testgen.Fuzz.run
                ~on_case:(fun r ->
                  if verbose || Testgen.Fuzz.is_failure r.outcome then
                    print_string (Testgen.Fuzz.format_case r))
                cfg eng
            in
            failures := !failures + List.length summary.Testgen.Fuzz.failures;
            Printf.printf "seed %d: %s\n%!" fuzz_seed (Testgen.Fuzz.format_summary summary))
          seeds;
        if !failures > 0 then begin
          Printf.eprintf "fuzz: %d failing cases\n%!" !failures;
          exit 1
        end)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate seeded random correlated-subquery queries, \
          run each under the full optimizer and the correlated oracle, and compare \
          result bags.  Failures shrink to a minimal reproducer; replay one with \
          --case (or `check --fuzz-seed`).  With --fault, checks the resilience \
          contract instead: agree with the clean oracle or die with a typed error.")
    Term.(
      const action $ sf_arg $ seed_arg $ exec_mode_arg $ cases_arg $ replay_arg
      $ verbose_arg $ cache_arg $ timeout_arg $ max_rows_arg $ max_apply_arg $ fault_arg
      $ seeds_arg)

let explain_cmd =
  let stages_arg =
    let doc = "Show every normalization stage (Figures 2/3/5 of the paper)." in
    Arg.(value & flag & info [ "stages" ] ~doc)
  in
  let analyze_arg =
    let doc =
      "Execute the chosen plan and annotate every operator with invocations, rows \
       in/out, wall time, Apply fast-path hits and hash-build sizes; includes the \
       optimizer's rule-firing trace."
    in
    Arg.(value & flag & info [ "analyze" ] ~doc)
  in
  let trace_arg =
    let doc = "Show the optimizer's per-round rule-firing trace (without executing)." in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let json_arg =
    let doc = "Emit machine-readable JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let no_properties_arg =
    let doc =
      "Suppress the per-node property section (derived keys, functional \
       dependencies, non-nullable columns, cardinality intervals)."
    in
    Arg.(value & flag & info [ "no-properties" ] ~doc)
  in
  let sql_opt_arg =
    let doc = "The SQL query; omit to explain the built-in TPC-H bench workloads." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)
  in
  let action sf seed config mode stages analyze trace json no_properties sql =
    let properties = not no_properties in
    with_engine sf seed (fun eng ->
        let queries =
          match sql with Some s -> [ ("query", s) ] | None -> Workloads.all_named
        in
        if json then begin
          match sql with
          | Some s ->
              print_endline
                (or_die s (fun () ->
                     Engine.explain_json ~config ~analyze ~properties ~mode eng s))
          | None ->
              let objs =
                List.map
                  (fun (name, sql) ->
                    or_die sql (fun () ->
                        Printf.sprintf "{\"workload\":%s,\"explain\":%s}"
                          (Exec.Metrics.json_string name)
                          (Engine.explain_json ~config ~analyze ~properties ~mode eng
                             sql)))
                  queries
              in
              print_endline ("[" ^ String.concat ",\n" objs ^ "]")
        end
        else
          List.iter
            (fun (name, sql) ->
              if List.length queries > 1 then Printf.printf "=== %s ===\n" name;
              or_die sql (fun () ->
                  if analyze then
                    print_string (Engine.explain_analyze ~config ~properties ~mode eng sql)
                  else begin
                    if stages then print_string (Engine.explain_stages ~config eng sql)
                    else print_string (Engine.explain ~config ~properties eng sql);
                    if trace then begin
                      let p = Engine.prepare ~config ~record_trace:true eng sql in
                      print_string "== optimizer trace ==\n";
                      match p.Engine.trace with
                      | Some tr -> print_string (Optimizer.Search.trace_to_string tr)
                      | None -> print_string "(cost-based search disabled)\n"
                    end
                  end);
              if List.length queries > 1 then print_newline ())
            queries)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the normalized tree and the chosen plan; --analyze executes it with \
          per-operator metrics (EXPLAIN ANALYZE), --trace shows the rule-firing \
          trace, --json emits machine-readable output.")
    Term.(
      const action $ sf_arg $ seed_arg $ level_arg $ exec_mode_arg $ stages_arg
      $ analyze_arg $ trace_arg $ json_arg $ no_properties_arg $ sql_opt_arg)

let repl_cmd =
  let action sf seed config =
    with_engine sf seed (fun eng ->
        print_endline "subquery_opt repl — terminate statements with ';', exit with \\q";
        let buf = Buffer.create 256 in
        let rec loop () =
          print_string (if Buffer.length buf = 0 then "sql> " else "  -> ");
          flush stdout;
          match input_line stdin with
          | exception End_of_file -> ()
          | line when String.trim line = "\\q" -> ()
          | line ->
              Buffer.add_string buf line;
              Buffer.add_char buf ' ';
              let s = Buffer.contents buf in
              (if String.contains line ';' then begin
                 Buffer.clear buf;
                 let sql = String.trim s in
                 let sql = String.sub sql 0 (String.index sql ';') in
                 try
                   if String.length sql >= 8 && String.sub sql 0 8 = "explain " then
                     print_string
                       (Engine.explain ~config eng
                          (String.sub sql 8 (String.length sql - 8)))
                   else print_endline (Engine.format_result (Engine.query ~config eng sql))
                 with e -> (
                   match Engine.Errors.of_exn ~sql e with
                   | Some err -> print_endline (Engine.Errors.to_string err)
                   | None -> raise e)
               end);
              loop ()
        in
        loop ())
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive SQL shell over the generated database.")
    Term.(const action $ sf_arg $ seed_arg $ level_arg)

(* --- durability ----------------------------------------------------- *)

let data_dir_arg =
  let doc =
    "Durable store directory (checksummed snapshots + write-ahead log).  Opened \
     with crash recovery: newest valid snapshot, WAL replay up to the first torn \
     record, index rebuild."
  in
  Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR" ~doc)

let data_dir_req =
  let doc = "Durable store directory." in
  Arg.(required & opt (some string) None & info [ "data-dir" ] ~docv:"DIR" ~doc)

let db_is_empty (db : Storage.Database.t) : bool =
  List.for_all
    (fun n -> Storage.Table.row_count (Storage.Database.table db n) = 0)
    (Catalog.table_names db.Storage.Database.catalog)

let print_recovery (eng : Engine.t) : unit =
  match Engine.recovery eng with
  | None -> ()
  | Some r ->
      Printf.eprintf "recovery: %s\n%!" (Storage.Durable.recovery_to_string r)

(* Open the store at [dir]; when it holds no rows yet, seed it with
   the generated TPC-H data through the journaled path. *)
let open_seeded ~dir ~sf ~seed : Engine.t =
  let eng = Engine.open_db ~dir (Catalog.tpch ()) in
  print_recovery eng;
  if db_is_empty (Engine.database eng) then begin
    Printf.eprintf "store is empty; seeding TPC-H at SF %.3f (seed %d)...\n%!" sf seed;
    let src = Datagen.Tpch_gen.database ~seed ~sf () in
    List.iter
      (fun name ->
        let rows = Storage.Table.to_rows (Storage.Database.table src name) in
        Engine.load_table eng name rows)
      (Catalog.table_names (Engine.database eng).Storage.Database.catalog)
  end;
  eng

let table_counts (db : Storage.Database.t) : string =
  Catalog.table_names db.Storage.Database.catalog
  |> List.sort compare
  |> List.map (fun n ->
         Printf.sprintf "  %-10s %8d rows" n
           (Storage.Table.row_count (Storage.Database.table db n)))
  |> String.concat "\n"

let snapshot_cmd =
  let action dir sf seed =
    or_die "" (fun () ->
        let eng = open_seeded ~dir ~sf ~seed in
        let epoch = Engine.snapshot eng in
        Engine.close_store eng;
        Printf.printf "snapshot written: %s (epoch %d)\n"
          (Storage.Snapshot.snapshot_path ~dir epoch)
          epoch)
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Open the durable store (seeding it with generated TPC-H data when \
          empty), write a checksummed snapshot of the committed state and rotate \
          the write-ahead log.")
    Term.(const action $ data_dir_req $ sf_arg $ seed_arg)

let recover_cmd =
  let action dir =
    or_die "" (fun () ->
        let eng = Engine.open_db ~dir (Catalog.tpch ()) in
        (match Engine.recovery eng with
        | Some r -> Printf.printf "recovery: %s\n" (Storage.Durable.recovery_to_string r)
        | None -> ());
        (match Engine.store eng with
        | Some s -> Printf.printf "epoch: %d\n" (Storage.Durable.epoch s)
        | None -> ());
        Printf.printf "%s\n" (table_counts (Engine.database eng));
        Engine.close_store eng)
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Run crash recovery on the durable store and report what was restored: \
          snapshot epoch, corrupt snapshots rejected, WAL records replayed, torn \
          bytes truncated, and per-table row counts.  Exits 1 with a typed storage \
          error when the on-disk state cannot be restored to an exact committed \
          prefix.")
    Term.(const action $ data_dir_req)

let restore_cmd =
  let action dir =
    or_die "" (fun () ->
        let eng = Engine.open_db ~dir (Catalog.tpch ()) in
        print_recovery eng;
        let epoch = Engine.snapshot eng in
        Engine.close_store eng;
        Printf.printf
          "restored committed state and compacted it into %s (epoch %d)\n"
          (Storage.Snapshot.snapshot_path ~dir epoch)
          epoch)
  in
  Cmd.v
    (Cmd.info "restore"
       ~doc:
         "Recover the committed state (newest valid snapshot + WAL replay) and \
          compact it into a fresh snapshot, rotating the log.  Use after \
          corruption was detected and worked around: the doctored file is \
          superseded by a newly verified one.")
    Term.(const action $ data_dir_req)

let serve_cmd =
  let domains_arg =
    let doc = "Worker domains in the service pool." in
    Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc = "Admission queue bound; submissions beyond it are shed." in
    Arg.(value & opt int 128 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Per-request deadline in seconds, measured from admission." in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)
  in
  let sessions_arg =
    let doc = "Spread requests round-robin over this many sessions." in
    Arg.(value & opt int 4 & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let max_cost_arg =
    let doc = "Optimizer-cost capacity; planned requests beyond it are shed." in
    Arg.(value & opt (some float) None & info [ "max-cost" ] ~docv:"COST" ~doc)
  in
  let json_arg =
    let doc = "Emit the final service statistics as JSON." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let cache_arg =
    let doc =
      "Enable the shared caching tier: workers prepare through one plan cache \
       (parameterized canonical forms, generation-based invalidation) and the \
       final statistics include hit/miss/invalidation counters."
    in
    Arg.(value & flag & info [ "cache" ] ~doc)
  in
  let action sf seed config mode domains queue deadline sessions max_cost fault json
      cache data_dir =
    let serve () =
        let service_config =
          { Service.default_config with
            domains;
            max_queue = queue;
            default_deadline_s = deadline;
            max_inflight_cost = max_cost;
            opt_config = config;
            exec_mode = mode;
            seed;
            enable_cache = cache;
          }
        in
        let t =
          match data_dir with
          | Some dir ->
              (* recovery-then-serve: the first admitted query already
                 sees exactly the committed prefix *)
              Service.create_with ~config:service_config (open_seeded ~dir ~sf ~seed)
          | None ->
              Printf.eprintf "loading TPC-H at SF %.3f (seed %d)...\n%!" sf seed;
              Service.create ~config:service_config (Datagen.Tpch_gen.database ~seed ~sf ())
        in
        (* one SQL statement per stdin line; all submitted before any
           reply is awaited, so overload behavior is observable *)
        let rec read acc i =
          match input_line stdin with
          | exception End_of_file -> List.rev acc
          | line when String.trim line = "" || (String.trim line).[0] = '#' -> read acc i
          | line ->
              let session = Printf.sprintf "s%d" (i mod max 1 sessions) in
              read ((i, Service.request ~session ?fault (String.trim line)) :: acc) (i + 1)
        in
        let reqs = read [] 0 in
        let replies = Service.run_many t (List.map snd reqs) in
        List.iter2
          (fun (i, req) (r : Service.reply) ->
            match r.Service.outcome with
            | Ok e ->
                Printf.printf "[%d %s] %d rows in %.3fs via %s%s%s\n" i req.Service.session
                  (List.length e.Engine.result.Exec.Executor.rows)
                  r.Service.total_s r.Service.served_by
                  (if r.Service.degraded then " (degraded)" else "")
                  (if r.Service.retries > 0 then
                     Printf.sprintf " (%d retries)" r.Service.retries
                   else "")
            | Error err ->
                Printf.printf "[%d %s] ERROR: %s\n" i req.Service.session
                  (Service.error_to_string err))
          reqs replies;
        let s = Service.stats t in
        Service.shutdown t;
        print_newline ();
        if json then print_endline (Service.Stats.to_json s)
        else print_string (Service.Stats.render s)
    in
    serve ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run SQL statements from stdin (one per line) through the concurrent query \
          service: a domain pool with bounded admission, per-request deadlines, \
          retry with backoff, per-session circuit breaking and crash-only workers.  \
          Prints each reply and the service statistics.")
    Term.(
      const action $ sf_arg $ seed_arg $ level_arg $ exec_mode_arg $ domains_arg
      $ queue_arg $ deadline_arg $ sessions_arg $ max_cost_arg $ fault_arg $ json_arg
      $ cache_arg $ data_dir_arg)

let () =
  let info =
    Cmd.info "subquery_opt"
      ~doc:
        "A query processor reproducing 'Orthogonal Optimization of Subqueries and \
         Aggregation' (Galindo-Legaria & Joshi, SIGMOD 2001)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; explain_cmd; lint_cmd; repl_cmd; check_cmd; fuzz_cmd; serve_cmd;
            snapshot_cmd; recover_cmd; restore_cmd ]))
